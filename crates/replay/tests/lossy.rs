//! Satellite: lossy-trace handling. A file whose `round` numbers are not
//! consecutive (here: synthetically truncated mid-file) is rejected by
//! default, or gap-skipped behind [`GapPolicy::Skip`] with the
//! dropped-record count reported.

use std::path::PathBuf;

use replay::{GapPolicy, TraceFile};

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("replay-lossy-{}-{tag}.jsonl", std::process::id()))
}

fn synthetic_line(round: u64) -> String {
    format!(
        "{{\"round\":{round},\"transmissions\":[{{\"node\":1,\"channel\":0,\"frame\":\"f{round}\"}}],\
         \"listeners\":[],\"adversary\":[],\"delivered\":[\"f{round}\",null,null]}}"
    )
}

/// Ten recorded rounds with rounds 3–5 torn out, as a file on disk.
fn truncated_trace(tag: &str) -> PathBuf {
    let path = temp_file(tag);
    let mut text = String::new();
    for round in (0..10).filter(|r| !(3..=5).contains(r)) {
        text.push_str(&synthetic_line(round));
        text.push('\n');
    }
    std::fs::write(&path, text).expect("write truncated trace");
    path
}

#[test]
fn truncated_file_is_rejected_by_default() {
    let path = truncated_trace("reject");
    let err = TraceFile::load(&path, GapPolicy::Reject).unwrap_err();
    std::fs::remove_file(&path).expect("cleanup");
    // The error names the line, the surrounding rounds, and the count.
    assert!(err.contains("line 4"), "{err}");
    assert!(err.contains("round 6 follows round 2"), "{err}");
    assert!(err.contains("3 record(s) missing"), "{err}");
}

#[test]
fn truncated_file_gap_skips_behind_the_flag_and_reports_the_count() {
    let path = truncated_trace("skip");
    let trace = TraceFile::load(&path, GapPolicy::Skip).expect("Skip tolerates the tear");
    std::fs::remove_file(&path).expect("cleanup");
    assert_eq!(trace.records.len(), 7);
    assert_eq!(trace.skipped, 3, "dropped-record count");
    assert_eq!(trace.total_rounds(), 10);
    // The surviving records are intact and in order.
    let rounds: Vec<u64> = trace.records.iter().map(|r| r.round).collect();
    assert_eq!(rounds, vec![0, 1, 2, 6, 7, 8, 9]);
}

#[test]
fn leading_truncation_counts_from_round_zero() {
    let path = temp_file("leading");
    let text = format!("{}\n{}\n", synthetic_line(2), synthetic_line(3));
    std::fs::write(&path, text).expect("write");
    let err = TraceFile::load(&path, GapPolicy::Reject).unwrap_err();
    assert!(err.contains("follows the start of the trace"), "{err}");
    let trace = TraceFile::load(&path, GapPolicy::Skip).expect("Skip tolerates");
    std::fs::remove_file(&path).expect("cleanup");
    assert_eq!(trace.skipped, 2);
    assert_eq!(trace.total_rounds(), 4);
}
