//! Satellite: `record_line` ∘ `parse_record_line` ≡ identity on
//! `RoundRecord`, property-tested — including escaped control characters
//! in frame strings, empty adversary arrays, and `null` delivered slots.

use proptest::prelude::*;
use radio_network::{record_line, ChannelId, Emission, NodeId, RoundRecord};
use replay::parse_record_line;

/// Characters deliberately hostile to the JSON escaper: quotes,
/// backslashes, named escapes, raw control characters, DEL, and
/// multi-byte code points.
const PALETTE: [char; 20] = [
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{1f}', '\u{7f}', 'π', '🦀', ':',
    ',', '{', '}', '[', ']',
];

fn frame_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..12).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| PALETTE[b as usize % PALETTE.len()])
            .collect()
    })
}

fn emission() -> impl Strategy<Value = Emission<String>> {
    (any::<bool>(), frame_string()).prop_map(|(noise, frame)| {
        if noise {
            Emission::Noise
        } else {
            Emission::Spoof(frame)
        }
    })
}

fn transmissions() -> impl Strategy<Value = Vec<(NodeId, ChannelId, String)>> {
    proptest::collection::vec(
        (0usize..64, 0usize..8, frame_string()).prop_map(|(n, c, f)| (NodeId(n), ChannelId(c), f)),
        0..6,
    )
}

fn listeners() -> impl Strategy<Value = Vec<(NodeId, ChannelId)>> {
    proptest::collection::vec(
        (0usize..64, 0usize..8).prop_map(|(n, c)| (NodeId(n), ChannelId(c))),
        0..6,
    )
}

fn adversary() -> impl Strategy<Value = Vec<(ChannelId, Emission<String>)>> {
    proptest::collection::vec(
        (0usize..8, emission()).prop_map(|(c, e)| (ChannelId(c), e)),
        0..4,
    )
}

fn delivered() -> impl Strategy<Value = Vec<Option<String>>> {
    proptest::collection::vec(proptest::option::of(frame_string()), 0..5)
}

fn arb_record() -> impl Strategy<Value = RoundRecord<String>> {
    (
        (any::<u64>(), transmissions()),
        (listeners(), adversary(), delivered()),
    )
        .prop_map(|((round, tx), (lst, adv, del))| {
            RoundRecord::from_parts(round, tx, lst, adv, del)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn record_line_then_parse_is_identity(record in arb_record()) {
        let line = record_line(&record, String::clone);
        let parsed = match parse_record_line(&line) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}\nline: {line}"))),
        };
        prop_assert_eq!(&parsed, &record);
        // And the re-encoding is byte-identical, so replayed lines can be
        // compared to recorded lines without normalization.
        prop_assert_eq!(record_line(&parsed, String::clone), line);
    }
}
