//! [`ScriptedAdversary`]: re-emit a recorded adversary schedule verbatim
//! through the normal [`Adversary`] trait.
//!
//! The scripted adversary never looks at the [`AdversaryView`] it is
//! handed — in particular it never mines the retained trace the way
//! `BusyChannelJammer` or the omniscient jammers do — so a replay is
//! independent of the engine's [`radio_network::TraceRetention`] and of
//! which engine (dense or sparse) resolves the rounds. Rounds past the
//! end of the script, and rounds missing from a gap-skipped trace, are
//! replayed as idle.

use radio_network::{Adversary, AdversaryAction, AdversaryView, RoundRecord};

/// An adversary that replays a fixed per-round schedule.
#[derive(Clone, Debug)]
pub struct ScriptedAdversary<M> {
    schedule: Vec<AdversaryAction<M>>,
}

impl<M> ScriptedAdversary<M> {
    /// Build a schedule from parsed trace records. `total_rounds` sizes
    /// the schedule (missing rounds stay idle); `decode` turns a recorded
    /// spoof-frame string back into a protocol frame and should error for
    /// frame types whose recorded encoding is lossy.
    ///
    /// # Errors
    /// If a record's round falls outside `0..total_rounds`, or `decode`
    /// rejects a spoofed frame (noise-only schedules never call it).
    pub fn from_records(
        records: &[RoundRecord<String>],
        total_rounds: u64,
        decode: impl Fn(&str) -> Result<M, String>,
    ) -> Result<Self, String> {
        let mut schedule: Vec<AdversaryAction<M>> = Vec::new();
        schedule.resize_with(
            usize::try_from(total_rounds).map_err(|_| "trace round count overflows usize")?,
            AdversaryAction::idle,
        );
        for record in records {
            let slot = schedule
                .get_mut(usize::try_from(record.round).unwrap_or(usize::MAX))
                .ok_or_else(|| {
                    format!(
                        "record for round {} is outside the schedule (0..{total_rounds})",
                        record.round
                    )
                })?;
            for (channel, emission) in record.adversary() {
                let emission = match emission {
                    radio_network::Emission::Noise => radio_network::Emission::Noise,
                    radio_network::Emission::Spoof(frame) => {
                        radio_network::Emission::Spoof(decode(frame).map_err(|e| {
                            format!(
                                "round {}: spoofed frame on channel {}: {e}",
                                record.round, channel.0
                            )
                        })?)
                    }
                };
                slot.push(channel, emission);
            }
        }
        Ok(ScriptedAdversary { schedule })
    }

    /// The number of rounds the schedule covers.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// `true` when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

impl<M: Clone> Adversary<M> for ScriptedAdversary<M> {
    fn act(&mut self, round: u64, _view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        usize::try_from(round)
            .ok()
            .and_then(|r| self.schedule.get(r))
            .cloned()
            .unwrap_or_else(AdversaryAction::idle)
    }

    fn name(&self) -> &'static str {
        "scripted-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_network::{ChannelId, Emission, Trace, TraceRetention};

    fn record(round: u64, adversary: Vec<(ChannelId, Emission<String>)>) -> RoundRecord<String> {
        RoundRecord::from_parts(round, Vec::new(), Vec::new(), adversary, vec![None, None])
    }

    #[test]
    fn replays_recorded_moves_and_idles_in_gaps() {
        let records = vec![
            record(0, vec![(ChannelId(1), Emission::Noise)]),
            record(
                2,
                vec![(ChannelId(0), Emission::Spoof("forged".to_string()))],
            ),
        ];
        let mut adv =
            ScriptedAdversary::from_records(&records, 4, |s| Ok(s.to_string())).expect("decodes");
        assert_eq!(adv.len(), 4);
        let trace = Trace::new(TraceRetention::None);
        let view = AdversaryView {
            channels: 2,
            budget: 1,
            nodes: 3,
            trace: &trace,
        };
        assert_eq!(
            adv.act(0, &view).transmissions,
            vec![(ChannelId(1), Emission::Noise)]
        );
        assert!(adv.act(1, &view).is_empty());
        assert_eq!(
            adv.act(2, &view).transmissions,
            vec![(ChannelId(0), Emission::Spoof("forged".to_string()))]
        );
        assert!(adv.act(3, &view).is_empty());
        // Past the end of the script: idle, not a panic.
        assert!(adv.act(100, &view).is_empty());
    }

    #[test]
    fn decoder_errors_surface_with_round_context() {
        let records = vec![record(
            1,
            vec![(ChannelId(0), Emission::Spoof("opaque".to_string()))],
        )];
        let err = ScriptedAdversary::<String>::from_records(&records, 2, |_| {
            Err("lossy encoding".to_string())
        })
        .unwrap_err();
        assert!(err.contains("round 1"), "{err}");
        assert!(err.contains("lossy encoding"), "{err}");
    }

    #[test]
    fn out_of_range_round_is_an_error() {
        let records = vec![record(5, Vec::new())];
        assert!(ScriptedAdversary::from_records(&records, 3, |s| Ok(s.to_string())).is_err());
    }
}
