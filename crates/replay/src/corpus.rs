//! The committed golden-trace corpus under `tests/corpus/`.
//!
//! One f-AME trace per adversary roster member plus one long-lived
//! session and one gateway-served session, each with a `.meta.json`
//! sidecar describing the run
//! ([`CorpusScenario`]). CI replays every trace through the
//! [`crate::ScriptedAdversary`] on both engines under
//! `--expect-identical`; `replay --regen tests/corpus` rewrites the
//! whole set after an intentional protocol or format change.

use std::fs;
use std::path::{Path, PathBuf};

use fame::longlived::ScriptEntry;
use radio_network::{record_line, ChannelModelSpec};
use secure_radio_bench::scenario::Workload;
use secure_radio_bench::{AdversaryChoice, ScenarioSpec};

use crate::harness::CorpusScenario;
use crate::reader::{GapPolicy, TraceFile};

/// Turn an adversary label (`"omni/prefer-edges+spoof"`) into a file
/// stem (`"omni-prefer-edges-spoof"`).
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// The full corpus roster: `(file stem, scenario)` pairs, deterministic
/// and in a fixed order. f-AME entries cover every member of
/// [`AdversaryChoice::roster`]; the long-lived entry runs the emulated
/// channel for a few epochs under a random jammer.
pub fn corpus_members() -> Vec<(String, CorpusScenario)> {
    // The smallest admissible f-AME regime (n = Params::min_nodes(1, 2))
    // keeps the committed traces compact while still exercising every
    // adversary, both frame kinds, and multi-epoch schedules.
    let mut members = Vec::new();
    for (i, adversary) in AdversaryChoice::roster().into_iter().enumerate() {
        let stem = format!("fame-{}", slug(adversary.label()));
        let spec = ScenarioSpec::new(stem.clone(), 18, 1, 2)
            .with_workload(Workload::RandomPairs { edges: 2 })
            .with_seed(1000 + i as u64)
            .with_adversary(adversary);
        members.push((stem, CorpusScenario::Fame { spec, trial: 0 }));
    }
    // One golden trace per non-ideal channel model (same compact regime),
    // so the replayer's model threading — header, receptions, per-listener
    // divergence — is pinned byte-for-byte like the adversary roster is.
    for (i, model) in non_ideal_models(18).into_iter().enumerate() {
        let stem = format!("fame-channel-{}", slug(&model.label()));
        let spec = ScenarioSpec::new(stem.clone(), 18, 1, 2)
            .with_workload(Workload::RandomPairs { edges: 2 })
            .with_seed(2000 + i as u64)
            .with_adversary(AdversaryChoice::RandomJam)
            .with_channel_model(model);
        members.push((stem, CorpusScenario::Fame { spec, trial: 0 }));
    }
    members.push((
        "longlived-session".to_string(),
        CorpusScenario::LongLived {
            n: 18,
            t: 1,
            channels: 2,
            seed: 11,
            adversary: AdversaryChoice::RandomJam,
            keyed: vec![0, 1, 2, 3, 4],
            script: vec![
                ScriptEntry {
                    eround: 0,
                    sender: 0,
                    message: b"corpus broadcast one".to_vec(),
                },
                ScriptEntry {
                    eround: 1,
                    sender: 3,
                    message: b"corpus broadcast two".to_vec(),
                },
                ScriptEntry {
                    eround: 2,
                    sender: 1,
                    message: Vec::new(),
                },
            ],
        },
    ));
    // One gateway-served session (the serving layer's seed fan-out,
    // keyed-set churn, rekey schedule, and intensity jammer): session 3
    // of a 6-session service loses one setup key and rekeys mid-run.
    members.push((
        "gateway-session".to_string(),
        CorpusScenario::Gateway {
            sessions: 6,
            n: 18,
            t: 1,
            channels: 2,
            horizon: 3,
            rekey_every: 2,
            broadcast_pct: 60,
            intensity: 1,
            seed: 3000,
            session: 3,
        },
    ));
    members
}

/// The non-ideal channel models the corpus pins, sized for `n` nodes:
/// mild Bernoulli loss, a moderate capture threshold, and a near-complete
/// unit grid (only the farthest corner pairs fall out of earshot) — each
/// perturbs the protocol without stalling it past its round budget.
fn non_ideal_models(n: usize) -> Vec<ChannelModelSpec> {
    let side = (1..).find(|s| s * s >= n).expect("some square covers n");
    let positions: Vec<(i64, i64)> = (0..n as i64)
        .map(|i| (i % side as i64, i / side as i64))
        .collect();
    vec![
        ChannelModelSpec::Lossy { p_loss_ppm: 50_000 },
        ChannelModelSpec::Capture { threshold: 128 },
        ChannelModelSpec::Geometric {
            positions,
            radius: side as u64 - 1,
        },
    ]
}

/// The sidecar path for a trace file (`x.jsonl` → `x.meta.json`).
pub fn meta_path(trace: &Path) -> PathBuf {
    trace.with_extension("meta.json")
}

/// Re-record the whole corpus into `dir` (created if missing): one
/// `.jsonl` trace plus one `.meta.json` sidecar per roster entry.
/// Returns the trace paths written.
///
/// # Errors
/// On I/O failure or a failed recording run.
pub fn regen_corpus(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for (stem, scenario) in corpus_members() {
        let trace = dir.join(format!("{stem}.jsonl"));
        scenario.record(&trace)?;
        let meta = meta_path(&trace);
        fs::write(&meta, scenario.json() + "\n")
            .map_err(|e| format!("write {}: {e}", meta.display()))?;
        written.push(trace);
    }
    Ok(written)
}

/// Statically validate one corpus entry: the sidecar parses, the trace
/// parses with **no** round gaps, every line is canonical
/// (`record_line` ∘ parse ≡ identity), and the channel count matches
/// the sidecar. Returns the number of recorded rounds.
///
/// This is the cheap schema check detlint runs per push; the CI
/// `trace-replay` job does the full re-execution.
///
/// # Errors
/// A message naming the offending line or field.
pub fn validate_corpus_entry(trace_text: &str, meta_text: &str) -> Result<u64, String> {
    let scenario = CorpusScenario::from_json_str(meta_text.trim())?;
    let trace = TraceFile::parse_str(trace_text, GapPolicy::Reject)?;
    for (record, line) in trace.records.iter().zip(&trace.lines) {
        let reencoded = record_line(record, String::clone);
        if &reencoded != line {
            return Err(format!(
                "round {}: line is not canonical record_line output",
                record.round
            ));
        }
    }
    // The trace's channel-model header and the sidecar's model must tell
    // the same story — a mismatch would replay under the wrong channel
    // semantics and report a bogus divergence (or hide a real one).
    let expected_header = match &scenario {
        CorpusScenario::Fame { spec, .. } if !spec.channel_model.is_ideal() => {
            Some(spec.channel_model.header_line())
        }
        _ => None,
    };
    if trace.header != expected_header {
        return Err(format!(
            "trace channel-model header {:?} does not match the sidecar's model {:?}",
            trace.header, expected_header
        ));
    }
    let expected_channels = match &scenario {
        CorpusScenario::Fame { spec, .. } => spec.channels,
        CorpusScenario::LongLived { channels, .. } | CorpusScenario::Gateway { channels, .. } => {
            *channels
        }
    };
    if let Some(channels) = trace.channels() {
        if channels != expected_channels {
            return Err(format!(
                "trace records {channels} channels but the sidecar says {expected_channels}"
            ));
        }
    }
    Ok(trace.total_rounds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_every_adversary_plus_models_plus_longlived() {
        let members = corpus_members();
        assert_eq!(members.len(), AdversaryChoice::roster().len() + 3 + 1 + 1);
        let stems: Vec<&str> = members.iter().map(|(s, _)| s.as_str()).collect();
        assert!(stems.contains(&"fame-busy-channel"));
        assert!(stems.contains(&"fame-omni-prefer-edges-spoof"));
        assert!(stems.contains(&"fame-channel-lossy-p50000"));
        assert!(stems.contains(&"fame-channel-capture-t128"));
        assert!(stems.contains(&"fame-channel-geometric-r4-n18"));
        assert!(stems.contains(&"longlived-session"));
        assert!(stems.contains(&"gateway-session"));
        // Stems are unique and filesystem-safe.
        let mut sorted = stems.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), stems.len());
        assert!(stems
            .iter()
            .all(|s| s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')));
    }

    #[test]
    fn meta_path_swaps_extension() {
        assert_eq!(
            meta_path(Path::new("tests/corpus/fame-none.jsonl")),
            Path::new("tests/corpus/fame-none.meta.json")
        );
    }

    #[test]
    fn validate_rejects_non_canonical_lines() {
        let (_, scenario) = corpus_members().remove(0);
        let meta = scenario.json();
        // Extra whitespace parses as JSON but is not canonical.
        let line = "{\"round\":0, \"transmissions\":[],\"listeners\":[],\"adversary\":[],\
                    \"delivered\":[null,null,null]}";
        let err = validate_corpus_entry(&format!("{line}\n"), &meta).unwrap_err();
        assert!(err.contains("not canonical"), "{err}");
    }
}
