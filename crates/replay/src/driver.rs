//! Replay drivers: a sink that captures re-encoded trace lines, and a
//! dense reference driver equivalent to the sparse [`radio_network::Simulation`] loop.
//!
//! [`CollectorSink`] is the replay-side counterpart of
//! [`radio_network::ChannelSink`]: every resolved round is re-encoded
//! through the shared [`record_line`] encoder (same `Debug` frame
//! rendering) into an in-memory line list, so a replayed run can be
//! compared byte-for-byte against the original file.
//!
//! [`run_dense`] drives **all** nodes through
//! [`Network::resolve_round`] every round — no wake queue. By the
//! [`radio_network::Protocol`] sleep contract (`next_wake` is "purely a
//! cost optimization and must not change behavior"), this produces the
//! same execution as [`radio_network::Simulation`]'s sparse `resolve_round_sparse`
//! loop; the differential tests pin that equivalence on real traces.

use std::fmt;
use std::sync::{Arc, Mutex};

use radio_network::seed;
use radio_network::{
    Action, Adversary, AdversaryView, Network, NetworkConfig, NodeId, Protocol, Reception,
    RoundRecord, Trace, TraceRetention, TraceSink,
};

pub use radio_network::record_line;

/// Which round-resolution engine drives a replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// All nodes through [`Network::resolve_round`] every round.
    Dense,
    /// The production [`radio_network::Simulation`] wake-queue loop
    /// (`resolve_round_sparse`).
    Sparse,
}

impl EngineMode {
    /// Human-readable engine name (`"dense"` / `"sparse"`).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Dense => "dense",
            EngineMode::Sparse => "sparse",
        }
    }
}

/// The shared line buffer a [`CollectorSink`] appends to.
pub type SharedLines = Arc<Mutex<Vec<String>>>;

/// A [`TraceSink`] that re-encodes every round through [`record_line`]
/// (with the default `Debug` frame rendering, matching
/// [`radio_network::ChannelSink::create`]) into a shared in-memory line
/// list, while also retaining history under the given
/// [`TraceRetention`] so history-mining adversaries still see the same
/// view they saw in the original run.
#[derive(Debug)]
pub struct CollectorSink<M> {
    lines: SharedLines,
    history: Trace<M>,
}

impl<M> CollectorSink<M> {
    /// A collector retaining history under `retention`; the returned
    /// handle reads the captured lines after the run.
    pub fn new(retention: TraceRetention) -> (Self, SharedLines) {
        let lines: SharedLines = Arc::default();
        (
            CollectorSink {
                lines: Arc::clone(&lines),
                history: Trace::new(retention),
            },
            lines,
        )
    }
}

/// Take the captured lines out of a [`SharedLines`] handle once the run
/// (and its sink) is finished.
pub fn collected_lines(lines: &SharedLines) -> Vec<String> {
    lines
        .lock()
        .expect("collector line buffer poisoned")
        .clone()
}

impl<M: Clone + fmt::Debug + Send> TraceSink<M> for CollectorSink<M> {
    fn wants_records(&self) -> bool {
        true
    }

    fn record(&mut self, record: &RoundRecord<M>) {
        self.lines
            .lock()
            .expect("collector line buffer poisoned")
            .push(record_line(record, |f| format!("{f:?}")));
        self.history.push_ref(record);
    }

    fn record_mut(&mut self, record: &mut RoundRecord<M>) {
        self.lines
            .lock()
            .expect("collector line buffer poisoned")
            .push(record_line(record, |f| format!("{f:?}")));
        self.history.push_swap(record);
    }

    fn note_round(&mut self) {
        self.history.note_round();
    }

    fn history(&self) -> &Trace<M> {
        &self.history
    }
}

/// Drive `nodes` for exactly `rounds` rounds with the dense engine,
/// mirroring [`radio_network::Simulation`]'s per-round order: the adversary acts first
/// (seeing the retained trace), then every node's `begin_round`, then
/// [`Network::resolve_round`], then every node's `end_round` (with a
/// [`Reception`] iff it listened). Nodes are reseeded with
/// [`seed::derive`]`(seed, i)` exactly as [`radio_network::Simulation::new`] does.
///
/// # Errors
/// Any [`radio_network::EngineError`] from round resolution, rendered
/// with its round number.
pub fn run_dense<P, A>(
    cfg: NetworkConfig,
    mut nodes: Vec<P>,
    mut adversary: A,
    seed: u64,
    rounds: u64,
    sink: Box<dyn TraceSink<P::Msg>>,
) -> Result<Vec<P>, String>
where
    P: Protocol,
    P::Msg: fmt::Debug + Send + 'static,
    A: Adversary<P::Msg>,
{
    let (channels, budget) = (cfg.channels(), cfg.budget());
    let mut network = Network::with_sink(cfg, sink);
    // Same reserved stream Simulation::assemble uses, so a model-bearing
    // replay is bit-identical to the original sparse run.
    network.seed_channel_model(seed::derive(seed, u64::MAX));
    for (i, node) in nodes.iter_mut().enumerate() {
        node.reseed(seed::derive(seed, i as u64));
    }
    let mut actions: Vec<Action<P::Msg>> = Vec::with_capacity(nodes.len());
    for _ in 0..rounds {
        let round = network.round();
        let adversary_action = {
            let view = AdversaryView {
                channels,
                budget,
                nodes: nodes.len(),
                trace: network.trace(),
            };
            adversary.act(round, &view)
        };
        actions.clear();
        for node in nodes.iter_mut() {
            actions.push(node.begin_round(round));
        }
        let resolution = network
            .resolve_round(&actions, &adversary_action)
            .map_err(|e| format!("round {round}: {e}"))?;
        for (i, node) in nodes.iter_mut().enumerate() {
            let reception = match &actions[i] {
                Action::Listen { channel } => Some(Reception {
                    channel: *channel,
                    frame: resolution.reception_for(NodeId(i), *channel),
                }),
                _ => None,
            };
            node.end_round(round, reception);
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_network::adversaries::RandomJammer;
    use radio_network::testing::BeaconNode;
    use radio_network::Simulation;

    fn beacons(n: usize, channels: usize) -> Vec<BeaconNode> {
        (0..n).map(|i| BeaconNode::new(i, channels, 20)).collect()
    }

    #[test]
    fn dense_driver_matches_simulation_byte_for_byte() {
        let cfg = NetworkConfig::new(3, 1)
            .expect("valid config")
            .with_retention(TraceRetention::LastRounds(4));

        let (sink, sparse_lines) = CollectorSink::new(TraceRetention::LastRounds(4));
        let mut sim = Simulation::with_sink(
            cfg.clone(),
            beacons(5, 3),
            RandomJammer::new(99),
            7,
            Box::new(sink),
        )
        .expect("simulation assembles");
        for _ in 0..20 {
            sim.step().expect("sparse step");
        }
        drop(sim);

        let (sink, dense_lines) = CollectorSink::new(TraceRetention::LastRounds(4));
        run_dense(
            cfg,
            beacons(5, 3),
            RandomJammer::new(99),
            7,
            20,
            Box::new(sink),
        )
        .expect("dense run");

        let sparse = collected_lines(&sparse_lines);
        let dense = collected_lines(&dense_lines);
        assert_eq!(sparse.len(), 20);
        assert_eq!(sparse, dense);
        assert!(sparse.iter().any(|l| l.contains("\"kind\":\"noise\"")));
    }
}
