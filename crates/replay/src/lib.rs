//! Trace replay & differential harness: every JSONL trace is a
//! regression corpus entry.
//!
//! The workspace's trace files (`docs/TRACE_FORMAT.md`) were write-only:
//! a disruption could be recorded but not re-driven. This crate closes
//! the loop:
//!
//! - [`parse`] inverts [`radio_network::record_line`]: one JSONL round
//!   line back into a [`radio_network::RoundRecord`] whose frames are the
//!   recorded frame strings. `record_line ∘ parse ≡ identity` on lines
//!   the encoder produced (proptested in `tests/roundtrip.rs`).
//! - [`reader`] loads whole trace files, enforcing consecutive round
//!   numbers ([`GapPolicy::Reject`]) or counting the holes
//!   ([`GapPolicy::Skip`]).
//! - [`scripted`] wraps a parsed schedule in [`ScriptedAdversary`], which
//!   re-emits the recorded adversary moves verbatim through the normal
//!   [`radio_network::Adversary`] trait — so a recorded run can be
//!   re-driven against any protocol variant, engine (dense or sparse),
//!   or [`radio_network::TraceRetention`].
//! - [`frames`] decodes the `Debug`-encoded [`fame::FameFrame`] strings
//!   that spoofing adversaries inject.
//! - [`driver`] drives a replay: a [`CollectorSink`] that captures the
//!   re-encoded lines, and [`run_dense`], a dense all-nodes-every-round
//!   driver equivalent (by the [`radio_network::Protocol`] sleep
//!   contract) to the sparse [`radio_network::Simulation`] loop.
//! - [`differ`] compares original and replayed lines and names the first
//!   divergent round, both records pretty-printed.
//! - [`harness`] ties it together for the two recorded protocol shapes
//!   (an f-AME scenario trial and a long-lived session) and the
//!   committed golden corpus under `tests/corpus/`.
//!
//! The `replay` binary is the command-line entry point:
//!
//! ```text
//! replay --trace tests/corpus/fame-spoofer.jsonl --engine both --expect-identical
//! replay --regen tests/corpus
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod differ;
pub mod driver;
pub mod frames;
pub mod harness;
pub mod parse;
pub mod reader;
pub mod scripted;

pub use corpus::{corpus_members, regen_corpus, validate_corpus_entry};
pub use differ::{compare, Divergence, ReplayReport};
pub use driver::{run_dense, CollectorSink, EngineMode};
pub use frames::decode_fame_frame;
pub use harness::CorpusScenario;
pub use parse::parse_record_line;
pub use reader::{GapPolicy, TraceFile};
pub use scripted::ScriptedAdversary;
