//! Byte-level comparison of an original trace against a replayed one,
//! reporting the **first divergent round** with both records
//! pretty-printed — the bisect-to-round output the differential runner
//! and CI print on failure.

use crate::parse::parse_record_line;
use crate::reader::TraceFile;

/// The first round where the replay stopped matching the recording.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Round number of the first mismatch.
    pub round: u64,
    /// The recorded line (expected).
    pub expected: String,
    /// The replayed line (actual), or a placeholder when the replay
    /// produced no line for this round.
    pub actual: String,
}

impl Divergence {
    /// A multi-line human-readable report: the round, both raw lines,
    /// and both records pretty-printed for eyeballing the exact field
    /// that moved.
    pub fn render(&self) -> String {
        let pretty = |line: &str| match parse_record_line(line) {
            Ok(record) => format!("{record:#?}"),
            Err(e) => format!("<unparseable: {e}>"),
        };
        format!(
            "first divergence at round {}\n\
             --- expected (recorded) ---\n{}\n{}\n\
             --- actual (replayed) ---\n{}\n{}\n",
            self.round,
            self.expected,
            pretty(&self.expected),
            self.actual,
            pretty(&self.actual),
        )
    }
}

/// The outcome of one original-vs-replay comparison.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayReport {
    /// Rounds with a recorded line that were compared.
    pub rounds_compared: u64,
    /// Rounds missing from the original (gap-skipped) and therefore not
    /// comparable.
    pub skipped: u64,
    /// The first mismatch, if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// `true` when every recorded round matched byte-for-byte.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Compare a recorded trace against replayed lines (`replayed[r]` is
/// round `r`). Rounds missing from a gap-skipped original are not
/// compared; the earliest mismatching recorded round wins.
pub fn compare(original: &TraceFile, replayed: &[String]) -> ReplayReport {
    let mut compared = 0u64;
    for (record, line) in original.records.iter().zip(&original.lines) {
        let actual = usize::try_from(record.round)
            .ok()
            .and_then(|r| replayed.get(r));
        match actual {
            Some(actual) if actual == line => compared += 1,
            other => {
                return ReplayReport {
                    rounds_compared: compared,
                    skipped: original.skipped,
                    divergence: Some(Divergence {
                        round: record.round,
                        expected: line.clone(),
                        actual: other
                            .cloned()
                            .unwrap_or_else(|| "<replay produced no line for this round>".into()),
                    }),
                };
            }
        }
    }
    ReplayReport {
        rounds_compared: compared,
        skipped: original.skipped,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::GapPolicy;

    fn line(round: u64, listeners: &str) -> String {
        format!(
            "{{\"round\":{round},\"transmissions\":[],\"listeners\":[{listeners}],\
             \"adversary\":[],\"delivered\":[null,null]}}"
        )
    }

    #[test]
    fn identical_lines_compare_clean() {
        let text = format!("{}\n{}\n", line(0, ""), line(1, ""));
        let trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean");
        let report = compare(&trace, &[line(0, ""), line(1, "")]);
        assert!(report.identical());
        assert_eq!(report.rounds_compared, 2);
    }

    #[test]
    fn first_divergent_round_is_named() {
        let text = format!("{}\n{}\n{}\n", line(0, ""), line(1, ""), line(2, ""));
        let trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean");
        let replayed = vec![
            line(0, ""),
            line(1, "{\"node\":9,\"channel\":0}"),
            line(2, "{\"node\":9,\"channel\":0}"),
        ];
        let report = compare(&trace, &replayed);
        let div = report.divergence.expect("diverges");
        assert_eq!(div.round, 1);
        assert_eq!(report.rounds_compared, 1);
        let rendered = div.render();
        assert!(
            rendered.contains("first divergence at round 1"),
            "{rendered}"
        );
        assert!(rendered.contains("expected (recorded)"), "{rendered}");
        assert!(rendered.contains("NodeId("), "{rendered}");
    }

    #[test]
    fn missing_replay_rounds_diverge() {
        let text = format!("{}\n{}\n", line(0, ""), line(1, ""));
        let trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean");
        let report = compare(&trace, &[line(0, "")]);
        let div = report.divergence.expect("diverges");
        assert_eq!(div.round, 1);
        assert!(div.actual.contains("no line"), "{}", div.actual);
    }
}
