//! Whole-file trace reading: parse every line, keep the original bytes
//! for byte-level comparison, and police the round numbering.
//!
//! A healthy trace written by [`radio_network::ChannelSink`] under
//! [`radio_network::OverflowPolicy::Block`] numbers its rounds
//! `0, 1, 2, …` with no holes. Under `DropNewest` back-pressure (or a
//! torn copy) records can go missing; [`GapPolicy`] decides whether that
//! is an error or merely counted.

use std::fs;
use std::path::Path;

use radio_network::{record_line, RoundRecord};

use crate::parse::parse_record_line;

/// What to do when round numbers in a trace file are not consecutive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GapPolicy {
    /// Refuse the file: every round `0..n` must be present exactly once.
    Reject,
    /// Tolerate holes (rounds must still be strictly increasing); the
    /// number of missing rounds is reported in [`TraceFile::skipped`].
    Skip,
}

/// A fully parsed trace file: the records, the original line bytes
/// (parallel to `records`), and how many rounds were missing.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// The channel-model header line, byte-for-byte, if the trace was
    /// recorded under a non-ideal model (see `docs/TRACE_FORMAT.md`).
    /// Never counted as a record.
    pub header: Option<String>,
    /// Parsed records, in file order (round numbers strictly increasing).
    pub records: Vec<RoundRecord<String>>,
    /// The original lines, byte-for-byte, parallel to `records`.
    pub lines: Vec<String>,
    /// Rounds missing from `0..total_rounds()` (0 under [`GapPolicy::Reject`]).
    pub skipped: u64,
}

/// The prefix a channel-model header line starts with.
const HEADER_PREFIX: &str = "{\"channel_model\":";

impl TraceFile {
    /// Parse a whole trace from text, one JSON object per non-empty line.
    ///
    /// # Errors
    /// On any unparsable line (with its 1-based line number), on
    /// duplicate or decreasing round numbers, and — under
    /// [`GapPolicy::Reject`] — on any hole in the round sequence.
    pub fn parse_str(text: &str, policy: GapPolicy) -> Result<Self, String> {
        let mut header = None;
        let mut records = Vec::new();
        let mut lines = Vec::new();
        let mut skipped = 0u64;
        let mut expect = 0u64;
        for (idx, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if line.starts_with(HEADER_PREFIX) {
                if header.is_some() || !records.is_empty() {
                    return Err(format!(
                        "line {lineno}: a channel-model header must be the first line of the \
                         trace, exactly once"
                    ));
                }
                header = Some(line.to_string());
                continue;
            }
            let record = parse_record_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
            if record.round < expect {
                return Err(format!(
                    "line {lineno}: round {} repeats or decreases (expected >= {expect})",
                    record.round
                ));
            }
            if record.round > expect {
                let missing = record.round - expect;
                match policy {
                    GapPolicy::Reject => {
                        let prev = if expect == 0 {
                            "the start of the trace".to_string()
                        } else {
                            format!("round {}", expect - 1)
                        };
                        return Err(format!(
                            "line {lineno}: round {} follows {prev} — {missing} record(s) \
                             missing (re-run with gap-skipping to tolerate lossy traces)",
                            record.round,
                        ));
                    }
                    GapPolicy::Skip => skipped += missing,
                }
            }
            expect = record.round + 1;
            records.push(record);
            lines.push(line.to_string());
        }
        Ok(TraceFile {
            header,
            records,
            lines,
            skipped,
        })
    }

    /// Read and parse a trace file from disk.
    ///
    /// # Errors
    /// On I/O failure or any [`TraceFile::parse_str`] error.
    pub fn load(path: &Path, policy: GapPolicy) -> Result<Self, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse_str(&text, policy)
    }

    /// One past the highest recorded round (the number of rounds a
    /// faithful replay must drive), or 0 for an empty trace.
    pub fn total_rounds(&self) -> u64 {
        self.records.last().map_or(0, |r| r.round + 1)
    }

    /// The channel count, taken from the first record.
    pub fn channels(&self) -> Option<usize> {
        self.records.first().map(|r| r.channels)
    }

    /// Corrupt the stored *expected* side of round `round` by inserting a
    /// listener no real run can produce (`node 4096`), then re-encode the
    /// stored line from the mutated record. A replay of the unmodified
    /// schedule is then guaranteed to diverge at exactly this round —
    /// the negative control for the differential runner.
    ///
    /// # Errors
    /// If `round` is not present in the trace.
    pub fn mutate_round(&mut self, round: u64) -> Result<(), String> {
        let idx = self
            .records
            .iter()
            .position(|r| r.round == round)
            .ok_or_else(|| format!("round {round} is not present in the trace"))?;
        let old = &self.records[idx];
        let mut mutated = RoundRecord::from_parts(
            old.round,
            old.transmissions()
                .map(|(n, c, f)| (n, c, f.clone()))
                .collect(),
            std::iter::once((radio_network::NodeId(4096), radio_network::ChannelId(0)))
                .chain(old.listeners())
                .collect(),
            old.adversary().map(|(c, e)| (c, e.clone())).collect(),
            old.delivered_dense().map(|s| s.cloned()).collect(),
        );
        mutated.reception_nodes = old.reception_nodes.clone();
        mutated.reception_frames = old.reception_frames.clone();
        self.lines[idx] = record_line(&mutated, String::clone);
        self.records[idx] = mutated;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(round: u64) -> String {
        format!(
            "{{\"round\":{round},\"transmissions\":[],\"listeners\":[],\"adversary\":[],\
             \"delivered\":[null,null]}}"
        )
    }

    #[test]
    fn consecutive_rounds_load_cleanly() {
        let text = format!("{}\n{}\n{}\n", line(0), line(1), line(2));
        let trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean trace");
        assert_eq!(trace.records.len(), 3);
        assert_eq!(trace.total_rounds(), 3);
        assert_eq!(trace.skipped, 0);
        assert_eq!(trace.channels(), Some(2));
    }

    #[test]
    fn gaps_reject_by_default_and_count_under_skip() {
        let text = format!("{}\n{}\n{}\n", line(0), line(3), line(4));
        let err = TraceFile::parse_str(&text, GapPolicy::Reject).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("2 record(s) missing"), "{err}");

        let trace = TraceFile::parse_str(&text, GapPolicy::Skip).expect("skip tolerates gaps");
        assert_eq!(trace.records.len(), 3);
        assert_eq!(trace.skipped, 2);
        assert_eq!(trace.total_rounds(), 5);
    }

    #[test]
    fn duplicates_and_reordering_always_reject() {
        let dup = format!("{}\n{}\n", line(1), line(1));
        // A trace must start at round 0, so a leading round 1 is a gap…
        assert!(TraceFile::parse_str(&dup, GapPolicy::Reject).is_err());
        // …and even under Skip, the repeat is fatal.
        let err = TraceFile::parse_str(&dup, GapPolicy::Skip).unwrap_err();
        assert!(err.contains("repeats or decreases"), "{err}");

        let reordered = format!("{}\n{}\n", line(2), line(0));
        let err = TraceFile::parse_str(&reordered, GapPolicy::Skip).unwrap_err();
        assert!(err.contains("repeats or decreases"), "{err}");
    }

    #[test]
    fn channel_model_header_is_kept_apart_from_records() {
        let header = "{\"channel_model\":{\"kind\":\"lossy\",\"p_loss_ppm\":250000}}";
        let text = format!("{header}\n{}\n{}\n", line(0), line(1));
        let trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean trace");
        assert_eq!(trace.header.as_deref(), Some(header));
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.total_rounds(), 2);

        // No header at all is fine (the ideal-model format).
        let trace = TraceFile::parse_str(&line(0), GapPolicy::Reject).expect("clean");
        assert_eq!(trace.header, None);

        // A header after the first record, or a second header, is fatal.
        let late = format!("{}\n{header}\n", line(0));
        let err = TraceFile::parse_str(&late, GapPolicy::Reject).unwrap_err();
        assert!(err.contains("first line"), "{err}");
        let twice = format!("{header}\n{header}\n{}\n", line(0));
        let err = TraceFile::parse_str(&twice, GapPolicy::Reject).unwrap_err();
        assert!(err.contains("exactly once"), "{err}");
    }

    #[test]
    fn mutate_round_rewrites_one_line() {
        let text = format!("{}\n{}\n", line(0), line(1));
        let mut trace = TraceFile::parse_str(&text, GapPolicy::Reject).expect("clean");
        let before = trace.lines[1].clone();
        trace.mutate_round(1).expect("round exists");
        assert_ne!(trace.lines[1], before);
        assert!(trace.lines[1].contains("\"node\":4096"));
        assert_eq!(trace.lines[0], line(0));
        assert!(trace.mutate_round(7).is_err());
    }
}
