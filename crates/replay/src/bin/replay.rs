//! The differential trace replayer.
//!
//! ```text
//! replay --trace <file.jsonl> [--meta <file>] [--protocol fame|longlived]
//!        [--engine dense|sparse|both] [--expect-identical] [--allow-gaps]
//!        [--mutate <round>]
//! replay --regen <dir>
//! ```
//!
//! Replays a recorded trace through the [`replay::ScriptedAdversary`]
//! against the honest side described by the trace's `.meta.json`
//! sidecar, and compares the re-encoded rounds byte-for-byte. On a
//! mismatch, the first divergent round is printed with both records
//! pretty-printed; with `--expect-identical` that is also a non-zero
//! exit. `--mutate <round>` corrupts the expected side of one round
//! first — the self-check that the differ really bisects to the exact
//! round. `--regen <dir>` re-records the whole golden corpus.

use std::path::PathBuf;
use std::process::ExitCode;

use replay::corpus::{meta_path, regen_corpus, validate_corpus_entry};
use replay::{compare, CorpusScenario, EngineMode, GapPolicy, TraceFile};

struct Options {
    trace: Option<PathBuf>,
    meta: Option<PathBuf>,
    protocol: Option<String>,
    engines: Vec<EngineMode>,
    expect_identical: bool,
    allow_gaps: bool,
    mutate: Option<u64>,
    regen: Option<PathBuf>,
}

const USAGE: &str = "usage: replay --trace <file.jsonl> [--meta <file>] \
                     [--protocol fame|longlived] [--engine dense|sparse|both] \
                     [--expect-identical] [--allow-gaps] [--mutate <round>]\n       \
                     replay --regen <dir>";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        trace: None,
        meta: None,
        protocol: None,
        engines: vec![EngineMode::Dense, EngineMode::Sparse],
        expect_identical: false,
        allow_gaps: false,
        mutate: None,
        regen: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--meta" => opts.meta = Some(PathBuf::from(value("--meta")?)),
            "--protocol" => opts.protocol = Some(value("--protocol")?),
            "--engine" => {
                opts.engines = match value("--engine")?.as_str() {
                    "dense" => vec![EngineMode::Dense],
                    "sparse" => vec![EngineMode::Sparse],
                    "both" => vec![EngineMode::Dense, EngineMode::Sparse],
                    other => return Err(format!("unknown engine \"{other}\"\n{USAGE}")),
                }
            }
            "--expect-identical" => opts.expect_identical = true,
            "--allow-gaps" => opts.allow_gaps = true,
            "--mutate" => {
                let round = value("--mutate")?;
                opts.mutate = Some(
                    round
                        .parse::<u64>()
                        .map_err(|e| format!("--mutate {round}: {e}"))?,
                );
            }
            "--regen" => opts.regen = Some(PathBuf::from(value("--regen")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument \"{other}\"\n{USAGE}")),
        }
    }
    if opts.trace.is_none() && opts.regen.is_none() {
        return Err(format!("one of --trace or --regen is required\n{USAGE}"));
    }
    Ok(opts)
}

fn protocol_kind(scenario: &CorpusScenario) -> &'static str {
    match scenario {
        CorpusScenario::Fame { .. } => "fame",
        CorpusScenario::LongLived { .. } => "longlived",
        CorpusScenario::Gateway { .. } => "gateway",
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    if let Some(dir) = &opts.regen {
        let written = regen_corpus(dir)?;
        for path in &written {
            println!("recorded {}", path.display());
        }
        println!(
            "regenerated {} corpus trace(s) in {}",
            written.len(),
            dir.display()
        );
        return Ok(true);
    }

    let trace_path = opts.trace.as_deref().expect("checked in parse_args");
    let meta = opts.meta.clone().unwrap_or_else(|| meta_path(trace_path));
    let meta_text = std::fs::read_to_string(&meta)
        .map_err(|e| format!("read sidecar {}: {e}", meta.display()))?;
    let scenario = CorpusScenario::from_json_str(meta_text.trim())?;
    if let Some(expected) = &opts.protocol {
        let actual = protocol_kind(&scenario);
        if expected != actual {
            return Err(format!(
                "--protocol {expected} does not match the sidecar ({actual})"
            ));
        }
    }

    let policy = if opts.allow_gaps {
        GapPolicy::Skip
    } else {
        GapPolicy::Reject
    };
    let mut trace = TraceFile::load(trace_path, policy)?;
    if let Some(round) = opts.mutate {
        trace.mutate_round(round)?;
        println!("mutated expected side of round {round} (negative control)");
    }
    println!(
        "replaying {} ({}, {} recorded round(s), {} skipped)",
        trace_path.display(),
        scenario.label(),
        trace.records.len(),
        trace.skipped,
    );

    let mut identical = true;
    for &engine in &opts.engines {
        let replayed = scenario.replay(&trace, engine)?;
        let report = compare(&trace, &replayed);
        match &report.divergence {
            None => println!(
                "[{}] identical: {} round(s) byte-for-byte",
                engine.label(),
                report.rounds_compared
            ),
            Some(div) => {
                identical = false;
                println!("[{}] {}", engine.label(), div.render());
            }
        }
    }
    Ok(identical)
}

/// Validate a corpus entry statically (used by `--trace` runs on corpus
/// files as a cheap pre-check when the trace has no gaps).
fn static_check(opts: &Options) {
    let (Some(trace_path), None, false) = (opts.trace.as_deref(), opts.mutate, opts.allow_gaps)
    else {
        return;
    };
    let meta = opts.meta.clone().unwrap_or_else(|| meta_path(trace_path));
    if let (Ok(trace_text), Ok(meta_text)) = (
        std::fs::read_to_string(trace_path),
        std::fs::read_to_string(&meta),
    ) {
        if let Err(e) = validate_corpus_entry(&trace_text, &meta_text) {
            eprintln!("warning: corpus schema check: {e}");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    static_check(&opts);
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            if opts.expect_identical {
                eprintln!("replay diverged and --expect-identical was set");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
