//! Protocol-aware replay: rebuild the exact honest-side run a corpus
//! trace was recorded from, drive it against the [`ScriptedAdversary`],
//! and hand back the re-encoded lines for byte comparison.
//!
//! Every corpus trace ships with a `.meta.json` sidecar describing the
//! run — a [`CorpusScenario`]. The honest side is fully determined by
//! the sidecar (nodes, seeds, retention window); the adversary side
//! comes verbatim from the trace itself, so the *same* sidecar replays
//! a healthy trace bit-identically and exposes the first divergent
//! round of a corrupted one.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use fame::longlived::LongLivedNode;
use fame::longlived::{
    run_longlived_streaming, LongLivedSession, ScriptEntry, LONGLIVED_TRACE_WINDOW,
};
use fame::protocol::{make_nodes, run_fame_streaming, FAME_TRACE_WINDOW};
use fame::Params;
use radio_crypto::{SealedBox, SymmetricKey};
use radio_network::adversaries::{BusyChannelJammer, NoAdversary, RandomJammer, SweepJammer};
use radio_network::{
    Adversary, ChannelSink, NetworkConfig, OverflowPolicy, Protocol, Simulation, TraceRetention,
};
use secure_radio_bench::json::{self, Json};
use secure_radio_bench::scenario::TRACE_QUEUE_CAPACITY;
use secure_radio_bench::{AdversaryChoice, ScenarioSpec};

use gateway::{session_engine_seed, session_jammer, session_keys, session_plan, ServiceConfig};

use crate::driver::{collected_lines, run_dense, CollectorSink, EngineMode};
use crate::frames::decode_fame_frame;
use crate::reader::TraceFile;
use crate::scripted::ScriptedAdversary;

/// The fixed group key corpus long-lived sessions run under (the session
/// is a regression fixture, not a security artifact).
fn corpus_key() -> SymmetricKey {
    SymmetricKey::from_bytes([42u8; 32])
}

/// One recorded run, as described by a corpus `.meta.json` sidecar:
/// everything needed to rebuild the honest side of the execution.
#[derive(Clone, PartialEq, Debug)]
pub enum CorpusScenario {
    /// One trial of a bench [`ScenarioSpec`] driven through wide-band
    /// f-AME ([`run_fame_streaming`]).
    Fame {
        /// The scenario (workload, adversary, seeds) — lossless JSON via
        /// [`ScenarioSpec::json`].
        spec: ScenarioSpec,
        /// Which trial of the scenario was recorded.
        trial: usize,
    },
    /// A long-lived emulated-channel session
    /// ([`run_longlived_streaming`]), under a noise-only adversary.
    LongLived {
        /// Honest node count.
        n: usize,
        /// Adversary budget.
        t: usize,
        /// Channel count.
        channels: usize,
        /// Simulation seed.
        seed: u64,
        /// The (noise-only) attacker.
        adversary: AdversaryChoice,
        /// Node ids holding the group key.
        keyed: Vec<usize>,
        /// The broadcast script.
        script: Vec<ScriptEntry>,
    },
    /// One session of the gateway's canonical service workload
    /// ([`gateway::workload`]), exactly as a worker shard opens it —
    /// pinning the serving layer's seed fan-out, keyed-set churn, rekey
    /// schedule, and intensity jammer byte-for-byte.
    Gateway {
        /// Total sessions in the service (the keyed-churn axis).
        sessions: usize,
        /// Honest node count per session.
        n: usize,
        /// Adversary budget per session.
        t: usize,
        /// Channel count.
        channels: usize,
        /// Service horizon in emulated rounds.
        horizon: u64,
        /// Rekey cadence in emulated rounds (0 = never).
        rekey_every: u64,
        /// Broadcast probability per slot, in percent.
        broadcast_pct: u8,
        /// Jamming intensity (channels jammed per round).
        intensity: usize,
        /// Service seed (every per-session seed fans out of it).
        seed: u64,
        /// The recorded session's id.
        session: usize,
    },
}

/// Build a noise-only adversary generically over the frame type — the
/// long-lived channel's frames ([`SealedBox`]) cannot be forged from a
/// recorded string, so spoofing roster members are rejected here.
fn noise_adversary<M: 'static>(
    choice: &AdversaryChoice,
    seed: u64,
) -> Result<Box<dyn Adversary<M>>, String> {
    match choice {
        AdversaryChoice::None => Ok(Box::new(NoAdversary)),
        AdversaryChoice::RandomJam => Ok(Box::new(RandomJammer::new(seed))),
        AdversaryChoice::SweepJam => Ok(Box::new(SweepJammer::new())),
        AdversaryChoice::BusyChannel { window } => {
            Ok(Box::new(BusyChannelJammer::new(seed, *window)))
        }
        other => Err(format!(
            "adversary \"{}\" spoofs protocol frames and cannot drive the long-lived channel",
            other.label()
        )),
    }
}

/// Rebuild the validated service config a [`CorpusScenario::Gateway`]
/// sidecar describes, plus the per-session network shape and the
/// recorded session id.
fn gateway_config(scenario: &CorpusScenario) -> Result<(ServiceConfig, Params, usize), String> {
    let CorpusScenario::Gateway {
        sessions,
        n,
        t,
        channels,
        horizon,
        rekey_every,
        broadcast_pct,
        intensity,
        seed,
        session,
    } = scenario
    else {
        return Err("not a gateway corpus scenario".into());
    };
    // One worker: the gateway's outcomes are bit-identical across worker
    // counts (pinned by its determinism proptest), so the sidecar does
    // not need to remember the fleet shape the trace was served under.
    let cfg = ServiceConfig::new(*sessions, 1, *n, *t, *channels, *horizon, *seed)
        .with_rekey_every(*rekey_every)
        .with_broadcast_pct(*broadcast_pct)
        .with_intensity(*intensity);
    cfg.validate()
        .map_err(|e| format!("gateway sidecar: {e}"))?;
    if *session >= cfg.sessions {
        return Err(format!(
            "gateway sidecar: session {session} outside the {}-session service",
            cfg.sessions
        ));
    }
    let params = Params::new(cfg.n, cfg.t, cfg.channels)
        .map_err(|e| format!("gateway session shape: {e:?}"))?;
    Ok((cfg, params, *session))
}

/// Fail on any object key outside `allowed`, naming the field — sidecar
/// parsing is strict so a partially-understood scenario can never replay
/// as the wrong run.
fn reject_unknown_fields(v: &Json, allowed: &[&str], context: &str) -> Result<(), String> {
    if let Json::Obj(entries) = v {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("{context}: unknown field \"{key}\""));
            }
        }
    }
    Ok(())
}

/// Drive a prepared node vector against a scripted schedule for exactly
/// `rounds` rounds and return the re-encoded lines.
fn drive<P>(
    cfg: NetworkConfig,
    retention: TraceRetention,
    nodes: Vec<P>,
    scripted: ScriptedAdversary<P::Msg>,
    seed: u64,
    rounds: u64,
    mode: EngineMode,
) -> Result<Vec<String>, String>
where
    P: Protocol,
    P::Msg: fmt::Debug + Send + 'static,
{
    let (sink, lines) = CollectorSink::new(retention);
    match mode {
        EngineMode::Dense => {
            run_dense(cfg, nodes, scripted, seed, rounds, Box::new(sink))?;
        }
        EngineMode::Sparse => {
            let mut sim = Simulation::with_sink(cfg, nodes, scripted, seed, Box::new(sink))
                .map_err(|e| format!("assemble replay simulation: {e}"))?;
            for _ in 0..rounds {
                sim.step().map_err(|e| format!("replay step: {e}"))?;
            }
        }
    }
    Ok(collected_lines(&lines))
}

impl CorpusScenario {
    /// Replay `trace` under this scenario's honest side with the chosen
    /// engine, returning the re-encoded line per driven round.
    ///
    /// # Errors
    /// On spec/trace mismatches (undecodable spoof frames, invalid
    /// parameters) or engine errors mid-replay.
    pub fn replay(&self, trace: &TraceFile, mode: EngineMode) -> Result<Vec<String>, String> {
        let rounds = trace.total_rounds();
        match self {
            CorpusScenario::Fame { spec, trial } => {
                let params = spec.params();
                let instance = spec.instance();
                let seed = spec.trial_seed(*trial);
                let nodes = make_nodes(&instance, &params, seed)
                    .map_err(|e| format!("assemble f-AME nodes: {e}"))?;
                let scripted =
                    ScriptedAdversary::from_records(&trace.records, rounds, decode_fame_frame)?;
                let retention = TraceRetention::LastRounds(FAME_TRACE_WINDOW);
                let cfg = NetworkConfig::new(params.c(), params.t())
                    .map_err(|e| format!("network config: {e}"))?
                    .with_retention(retention)
                    .with_channel_model(spec.channel_model.clone());
                drive(cfg, retention, nodes, scripted, seed, rounds, mode)
            }
            CorpusScenario::LongLived {
                n,
                t,
                channels,
                seed,
                adversary: _,
                keyed,
                script,
            } => {
                let params = Params::new(*n, *t, *channels)
                    .map_err(|e| format!("long-lived params: {e:?}"))?;
                let keys: Vec<Option<SymmetricKey>> = (0..*n)
                    .map(|id| keyed.contains(&id).then(corpus_key))
                    .collect();
                for entry in script {
                    if keys.get(entry.sender).is_none_or(Option::is_none) {
                        return Err(format!("scripted sender {} has no group key", entry.sender));
                    }
                }
                let emulated_rounds = script.iter().map(|e| e.eround + 1).max().unwrap_or(0);
                let nodes: Vec<LongLivedNode> = (0..*n)
                    .map(|id| {
                        let my_script = script
                            .iter()
                            .filter(|e| e.sender == id)
                            .map(|e| (e.eround, e.message.clone()))
                            .collect();
                        LongLivedNode::new(id, params.clone(), keys[id], my_script, emulated_rounds)
                    })
                    .collect();
                let scripted: ScriptedAdversary<SealedBox> =
                    ScriptedAdversary::from_records(&trace.records, rounds, |s| {
                        Err(format!(
                            "long-lived corpus adversaries never spoof; cannot decode a \
                             SealedBox from \"{s}\""
                        ))
                    })?;
                let retention = TraceRetention::LastRounds(LONGLIVED_TRACE_WINDOW);
                let cfg = NetworkConfig::new(params.c(), params.t())
                    .map_err(|e| format!("network config: {e}"))?
                    .with_retention(retention);
                drive(cfg, retention, nodes, scripted, *seed, rounds, mode)
            }
            CorpusScenario::Gateway { .. } => {
                let (service, params, session) = gateway_config(self)?;
                let (script, rekeys) = session_plan(&service, session);
                let keys = session_keys(&service, session);
                // Node assembly mirrors `LongLivedSession::open` exactly:
                // the session lasts max(horizon, last scripted eround + 1)
                // emulated rounds and only keyed nodes carry the rekey
                // schedule.
                let emulated_rounds = script
                    .iter()
                    .map(|e| e.eround + 1)
                    .max()
                    .unwrap_or(0)
                    .max(service.horizon);
                let rekey_map: BTreeMap<u64, SymmetricKey> = rekeys.into_iter().collect();
                let nodes: Vec<LongLivedNode> = (0..service.n)
                    .map(|id| {
                        let my_script = script
                            .iter()
                            .filter(|e| e.sender == id)
                            .map(|e| (e.eround, e.message.clone()))
                            .collect();
                        let node = LongLivedNode::new(
                            id,
                            params.clone(),
                            keys[id],
                            my_script,
                            emulated_rounds,
                        );
                        if keys[id].is_some() {
                            node.with_rekeys(rekey_map.clone())
                        } else {
                            node
                        }
                    })
                    .collect();
                let scripted: ScriptedAdversary<SealedBox> =
                    ScriptedAdversary::from_records(&trace.records, rounds, |s| {
                        Err(format!(
                            "gateway corpus jammers never spoof; cannot decode a \
                             SealedBox from \"{s}\""
                        ))
                    })?;
                let retention = TraceRetention::LastRounds(LONGLIVED_TRACE_WINDOW);
                let cfg = NetworkConfig::new(params.c(), params.t())
                    .map_err(|e| format!("network config: {e}"))?
                    .with_retention(retention);
                drive(
                    cfg,
                    retention,
                    nodes,
                    scripted,
                    session_engine_seed(&service, session),
                    rounds,
                    mode,
                )
            }
        }
    }

    /// Record this scenario's trace to `path` through the shared
    /// [`radio_network::record_line`] encoder (via [`ChannelSink`]) —
    /// the corpus (re)generation path.
    ///
    /// # Errors
    /// On I/O failure or a failed run.
    pub fn record(&self, path: &Path) -> Result<(), String> {
        match self {
            CorpusScenario::Fame { spec, trial } => {
                let params = spec.params();
                let instance = spec.instance();
                let seed = spec.trial_seed(*trial);
                let adversary = spec.adversary.build(&params, instance.pairs(), seed);
                let mut sink =
                    ChannelSink::create(path, TRACE_QUEUE_CAPACITY, OverflowPolicy::Block)
                        .map_err(|e| format!("create {}: {e}", path.display()))?
                        .with_history(TraceRetention::LastRounds(FAME_TRACE_WINDOW));
                if !spec.channel_model.is_ideal() {
                    sink = sink.with_header(spec.channel_model.header_line());
                }
                run_fame_streaming(&instance, &params, adversary, seed, Box::new(sink))
                    .map_err(|e| format!("record f-AME run: {e}"))?;
                Ok(())
            }
            CorpusScenario::LongLived {
                n,
                t,
                channels,
                seed,
                adversary,
                keyed,
                script,
            } => {
                let params = Params::new(*n, *t, *channels)
                    .map_err(|e| format!("long-lived params: {e:?}"))?;
                let keys: Vec<Option<SymmetricKey>> = (0..*n)
                    .map(|id| keyed.contains(&id).then(corpus_key))
                    .collect();
                let adversary = noise_adversary::<SealedBox>(adversary, *seed)?;
                let sink = ChannelSink::create(path, TRACE_QUEUE_CAPACITY, OverflowPolicy::Block)
                    .map_err(|e| format!("create {}: {e}", path.display()))?
                    .with_history(TraceRetention::LastRounds(LONGLIVED_TRACE_WINDOW));
                run_longlived_streaming(&params, &keys, script, adversary, *seed, Box::new(sink))
                    .map_err(|e| format!("record long-lived run: {e}"))?;
                Ok(())
            }
            CorpusScenario::Gateway { .. } => {
                let (service, params, session) = gateway_config(self)?;
                let (script, rekeys) = session_plan(&service, session);
                let keys = session_keys(&service, session);
                let sink = ChannelSink::create(path, TRACE_QUEUE_CAPACITY, OverflowPolicy::Block)
                    .map_err(|e| format!("create {}: {e}", path.display()))?
                    .with_history(TraceRetention::LastRounds(LONGLIVED_TRACE_WINDOW));
                let mut live = LongLivedSession::open(
                    &params,
                    &keys,
                    &script,
                    &rekeys,
                    service.horizon,
                    session_jammer(&service, session),
                    session_engine_seed(&service, session),
                    TraceRetention::LastRounds(LONGLIVED_TRACE_WINDOW),
                    Some(Box::new(sink)),
                )
                .map_err(|e| format!("open gateway session: {e}"))?;
                live.run(false)
                    .map_err(|e| format!("record gateway session: {e}"))?;
                Ok(())
            }
        }
    }

    /// This scenario as a single-line `.meta.json` sidecar object.
    pub fn json(&self) -> String {
        match self {
            CorpusScenario::Fame { spec, trial } => {
                format!(
                    "{{\"kind\":\"fame\",\"trial\":{trial},\"spec\":{}}}",
                    spec.json()
                )
            }
            CorpusScenario::LongLived {
                n,
                t,
                channels,
                seed,
                adversary,
                keyed,
                script,
            } => {
                let keyed: Vec<String> = keyed.iter().map(usize::to_string).collect();
                let script: Vec<String> = script
                    .iter()
                    .map(|e| {
                        let bytes: Vec<String> = e.message.iter().map(u8::to_string).collect();
                        format!(
                            "{{\"eround\":{},\"sender\":{},\"message\":[{}]}}",
                            e.eround,
                            e.sender,
                            bytes.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"kind\":\"longlived\",\"n\":{n},\"t\":{t},\"channels\":{channels},\
                     \"seed\":{seed},\"adversary\":{},\"keyed\":[{}],\"script\":[{}]}}",
                    adversary.json(),
                    keyed.join(","),
                    script.join(",")
                )
            }
            CorpusScenario::Gateway {
                sessions,
                n,
                t,
                channels,
                horizon,
                rekey_every,
                broadcast_pct,
                intensity,
                seed,
                session,
            } => format!(
                "{{\"kind\":\"gateway\",\"sessions\":{sessions},\"n\":{n},\"t\":{t},\
                 \"channels\":{channels},\"horizon\":{horizon},\"rekey_every\":{rekey_every},\
                 \"broadcast_pct\":{broadcast_pct},\"intensity\":{intensity},\"seed\":{seed},\
                 \"session\":{session}}}"
            ),
        }
    }

    /// Parse a `.meta.json` sidecar.
    ///
    /// Unknown fields are a **hard error** naming the field: a sidecar
    /// the replayer does not fully understand could describe a run it
    /// cannot faithfully rebuild, and silently ignoring the field would
    /// turn that into a spurious replay divergence (or worse, a spurious
    /// match).
    ///
    /// # Errors
    /// On malformed JSON, an unknown `kind`, or any unknown field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        const CTX: &str = "corpus meta";
        let v = Json::parse(text).map_err(|e| format!("{CTX}: {e}"))?;
        match json::kind(&v, CTX)? {
            "fame" => {
                reject_unknown_fields(&v, &["kind", "trial", "spec"], CTX)?;
                Ok(CorpusScenario::Fame {
                    spec: ScenarioSpec::from_json(json::field(&v, "spec", CTX)?)?,
                    trial: json::usize_field(&v, "trial", CTX)?,
                })
            }
            "longlived" => {
                reject_unknown_fields(
                    &v,
                    &[
                        "kind",
                        "n",
                        "t",
                        "channels",
                        "seed",
                        "adversary",
                        "keyed",
                        "script",
                    ],
                    CTX,
                )?;
                let keyed = json::field(&v, "keyed", CTX)?
                    .as_array()
                    .ok_or_else(|| format!("{CTX}: \"keyed\" is not an array"))?
                    .iter()
                    .map(|e| {
                        e.as_usize()
                            .ok_or_else(|| format!("{CTX}: keyed entry is not an index"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let mut script = Vec::new();
                for (i, entry) in json::field(&v, "script", CTX)?
                    .as_array()
                    .ok_or_else(|| format!("{CTX}: \"script\" is not an array"))?
                    .iter()
                    .enumerate()
                {
                    let ctx = format!("script[{i}]");
                    reject_unknown_fields(entry, &["eround", "sender", "message"], &ctx)?;
                    let message = json::field(entry, "message", &ctx)?
                        .as_array()
                        .ok_or_else(|| format!("{ctx}: \"message\" is not an array"))?
                        .iter()
                        .map(|b| {
                            b.as_u64()
                                .and_then(|n| u8::try_from(n).ok())
                                .ok_or_else(|| format!("{ctx}: message byte out of range"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    script.push(ScriptEntry {
                        eround: json::u64_field(entry, "eround", &ctx)?,
                        sender: json::usize_field(entry, "sender", &ctx)?,
                        message,
                    });
                }
                Ok(CorpusScenario::LongLived {
                    n: json::usize_field(&v, "n", CTX)?,
                    t: json::usize_field(&v, "t", CTX)?,
                    channels: json::usize_field(&v, "channels", CTX)?,
                    seed: json::u64_field(&v, "seed", CTX)?,
                    adversary: AdversaryChoice::from_json(json::field(&v, "adversary", CTX)?)?,
                    keyed,
                    script,
                })
            }
            "gateway" => {
                reject_unknown_fields(
                    &v,
                    &[
                        "kind",
                        "sessions",
                        "n",
                        "t",
                        "channels",
                        "horizon",
                        "rekey_every",
                        "broadcast_pct",
                        "intensity",
                        "seed",
                        "session",
                    ],
                    CTX,
                )?;
                let broadcast_pct = json::u64_field(&v, "broadcast_pct", CTX)?;
                let broadcast_pct = u8::try_from(broadcast_pct)
                    .map_err(|_| format!("{CTX}: \"broadcast_pct\" out of range"))?;
                Ok(CorpusScenario::Gateway {
                    sessions: json::usize_field(&v, "sessions", CTX)?,
                    n: json::usize_field(&v, "n", CTX)?,
                    t: json::usize_field(&v, "t", CTX)?,
                    channels: json::usize_field(&v, "channels", CTX)?,
                    horizon: json::u64_field(&v, "horizon", CTX)?,
                    rekey_every: json::u64_field(&v, "rekey_every", CTX)?,
                    broadcast_pct,
                    intensity: json::usize_field(&v, "intensity", CTX)?,
                    seed: json::u64_field(&v, "seed", CTX)?,
                    session: json::usize_field(&v, "session", CTX)?,
                })
            }
            other => Err(format!("{CTX}: unknown kind \"{other}\"")),
        }
    }

    /// A short human label (used in corpus file names and reports).
    pub fn label(&self) -> String {
        match self {
            CorpusScenario::Fame { spec, trial } => format!("fame/{} trial {trial}", spec.name),
            CorpusScenario::LongLived { adversary, .. } => {
                format!("longlived/{}", adversary.label())
            }
            CorpusScenario::Gateway {
                session, intensity, ..
            } => format!("gateway/session {session} (intensity {intensity})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn longlived_scenario() -> CorpusScenario {
        CorpusScenario::LongLived {
            n: 40,
            t: 2,
            channels: 3,
            seed: 11,
            adversary: AdversaryChoice::RandomJam,
            keyed: vec![0, 1, 2, 3, 4],
            script: vec![
                ScriptEntry {
                    eround: 0,
                    sender: 0,
                    message: b"hello".to_vec(),
                },
                ScriptEntry {
                    eround: 1,
                    sender: 3,
                    message: Vec::new(),
                },
            ],
        }
    }

    fn gateway_scenario() -> CorpusScenario {
        CorpusScenario::Gateway {
            sessions: 6,
            n: 18,
            t: 1,
            channels: 2,
            horizon: 3,
            rekey_every: 2,
            broadcast_pct: 60,
            intensity: 1,
            seed: 3000,
            session: 3,
        }
    }

    #[test]
    fn meta_sidecars_roundtrip() {
        let fame = CorpusScenario::Fame {
            spec: ScenarioSpec::new("corpus", 40, 2, 3),
            trial: 0,
        };
        for scenario in [fame, longlived_scenario(), gateway_scenario()] {
            let encoded = scenario.json();
            let decoded = CorpusScenario::from_json_str(&encoded).expect("parses");
            assert_eq!(decoded, scenario, "{encoded}");
        }
    }

    #[test]
    fn unknown_sidecar_fields_are_hard_errors_naming_the_field() {
        let fame = CorpusScenario::Fame {
            spec: ScenarioSpec::new("corpus", 40, 2, 3),
            trial: 0,
        };
        // Smuggle an extra key into each object level of a valid sidecar.
        let err = CorpusScenario::from_json_str(&fame.json().replacen("\"trial\"", "\"tril\"", 1))
            .unwrap_err();
        assert!(err.contains("unknown field \"tril\""), "{err}");

        let longlived = longlived_scenario().json();
        let err = CorpusScenario::from_json_str(&longlived.replacen(
            "\"seed\":11",
            "\"seed\":11,\"sede\":11",
            1,
        ))
        .unwrap_err();
        assert!(err.contains("unknown field \"sede\""), "{err}");
        let err = CorpusScenario::from_json_str(&longlived.replacen(
            "\"sender\":0",
            "\"sender\":0,\"loud\":true",
            1,
        ))
        .unwrap_err();
        assert!(err.contains("unknown field \"loud\""), "{err}");
        assert!(err.contains("script[0]"), "{err}");

        let gateway = gateway_scenario().json();
        let err = CorpusScenario::from_json_str(&gateway.replacen(
            "\"intensity\":1",
            "\"intensity\":1,\"workers\":4",
            1,
        ))
        .unwrap_err();
        assert!(err.contains("unknown field \"workers\""), "{err}");
    }

    #[test]
    fn gateway_sidecars_reject_out_of_range_sessions() {
        let encoded = gateway_scenario()
            .json()
            .replacen("\"session\":3", "\"session\":9", 1);
        let scenario = CorpusScenario::from_json_str(&encoded).expect("parses");
        let err = gateway_config(&scenario).expect_err("session 9 of 6");
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn fame_sidecars_roundtrip_non_ideal_channel_models() {
        let scenario = CorpusScenario::Fame {
            spec: ScenarioSpec::new("corpus", 40, 2, 3)
                .with_channel_model(radio_network::ChannelModelSpec::Capture { threshold: 128 }),
            trial: 1,
        };
        let encoded = scenario.json();
        assert!(encoded.contains("\"channel_model\""), "{encoded}");
        let decoded = CorpusScenario::from_json_str(&encoded).expect("parses");
        assert_eq!(decoded, scenario);
    }

    #[test]
    fn spoofing_adversaries_cannot_drive_longlived() {
        let err = match noise_adversary::<SealedBox>(&AdversaryChoice::Spoof, 1) {
            Err(e) => e,
            Ok(_) => panic!("spoofing adversary must be rejected"),
        };
        assert!(err.contains("spoof"), "{err}");
    }
}
