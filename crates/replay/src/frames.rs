//! Decode recorded [`FameFrame`] strings back into frames.
//!
//! The trace encoders render frames with `Debug`, so this module is a
//! small strict parser over the `Debug` grammar of the frame variants a
//! spoofing adversary can actually inject. `GossipChunk` and
//! `VectorSignature` carry a [`radio_crypto`] digest whose `Debug` form
//! is deliberately truncated (lossy), so they cannot be decoded — no
//! roster adversary forges them, and the decoder says so explicitly if a
//! trace ever contains one as a spoof.

use std::collections::BTreeMap;

use fame::FameFrame;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(format!("expected \"{token}\" at byte {}", self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| format!("number at byte {start}: {e}"))
    }

    fn parse_usize(&mut self) -> Result<usize, String> {
        let n = self.parse_u64()?;
        usize::try_from(n).map_err(|_| format!("number {n} overflows usize"))
    }

    fn parse_bool(&mut self) -> Result<bool, String> {
        if self.expect("true").is_ok() {
            Ok(true)
        } else if self.expect("false").is_ok() {
            Ok(false)
        } else {
            Err(format!("expected true/false at byte {}", self.pos))
        }
    }

    /// `[1, 2, 3]` — a `Debug`-printed `Vec<u8>`.
    fn parse_byte_list(&mut self) -> Result<Vec<u8>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let n = self.parse_u64()?;
            out.push(u8::try_from(n).map_err(|_| format!("byte value {n} out of range"))?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected \",\" or \"]\" at byte {}", self.pos)),
            }
        }
    }

    /// `{k1: v1, k2: v2}` — a `Debug`-printed `BTreeMap<usize, V>`.
    fn parse_map<V>(
        &mut self,
        mut value: impl FnMut(&mut Self) -> Result<V, String>,
    ) -> Result<BTreeMap<usize, V>, String> {
        self.expect("{")?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.parse_usize()?;
            self.expect(":")?;
            out.insert(key, value(self)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected \",\" or \"}}\" at byte {}", self.pos)),
            }
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing input at byte {}", self.pos))
        }
    }
}

/// Decode the `Debug` rendering of a [`FameFrame`] back into the frame.
///
/// Handles exactly the variants a roster spoofer can inject (`Vector`,
/// `FeedbackFalse`, `FeedbackTrue`, `FeedbackBitmap`); the digest-bearing
/// `GossipChunk`/`VectorSignature` renderings are lossy by design and
/// yield a descriptive error.
///
/// # Errors
/// On digest-bearing variants and on any string that is not the exact
/// `Debug` form of a decodable variant.
pub fn decode_fame_frame(s: &str) -> Result<FameFrame, String> {
    let t = s.trim();
    if t.starts_with("GossipChunk") || t.starts_with("VectorSignature") {
        return Err(format!(
            "cannot decode digest-bearing frame (its recorded Debug form is lossy): {t}"
        ));
    }
    let mut c = Cursor::new(t);
    if c.expect("FeedbackFalse").is_ok() && c.finish().is_ok() {
        return Ok(FameFrame::FeedbackFalse);
    }
    let mut c = Cursor::new(t);
    if c.expect("FeedbackTrue").is_ok() {
        c.expect("{")?;
        c.expect("reported")?;
        c.expect(":")?;
        let reported = c.parse_usize()?;
        c.expect("}")?;
        c.finish()?;
        return Ok(FameFrame::FeedbackTrue { reported });
    }
    let mut c = Cursor::new(t);
    if c.expect("FeedbackBitmap").is_ok() {
        c.expect("{")?;
        c.expect("known")?;
        c.expect(":")?;
        let known = c.parse_map(Cursor::parse_bool)?;
        c.expect("}")?;
        c.finish()?;
        return Ok(FameFrame::FeedbackBitmap { known });
    }
    let mut c = Cursor::new(t);
    if c.expect("Vector").is_ok() {
        c.expect("{")?;
        c.expect("owner")?;
        c.expect(":")?;
        let owner = c.parse_usize()?;
        c.expect(",")?;
        c.expect("messages")?;
        c.expect(":")?;
        let messages = c.parse_map(Cursor::parse_byte_list)?;
        c.expect("}")?;
        c.finish()?;
        return Ok(FameFrame::Vector { owner, messages });
    }
    Err(format!("unrecognized frame encoding: {t}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_encodings_roundtrip() {
        let frames = vec![
            FameFrame::FeedbackFalse,
            FameFrame::FeedbackTrue { reported: 17 },
            FameFrame::Vector {
                owner: 0,
                messages: BTreeMap::new(),
            },
            FameFrame::Vector {
                owner: 3,
                messages: [(1usize, b"forged".to_vec()), (2, Vec::new())]
                    .into_iter()
                    .collect(),
            },
            FameFrame::FeedbackBitmap {
                known: [(0usize, true), (5, false)].into_iter().collect(),
            },
        ];
        for frame in frames {
            let encoded = format!("{frame:?}");
            assert_eq!(
                decode_fame_frame(&encoded).expect("decodes"),
                frame,
                "{encoded}"
            );
        }
    }

    #[test]
    fn digest_bearing_variants_are_named_lossy() {
        let err = decode_fame_frame("GossipChunk { owner: 0, index: 1, .. }").unwrap_err();
        assert!(err.contains("lossy"), "{err}");
        let err = decode_fame_frame("VectorSignature { owner: 0, .. }").unwrap_err();
        assert!(err.contains("lossy"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_fame_frame("Vector { owner: }").is_err());
        assert!(decode_fame_frame("ping").is_err());
        assert!(decode_fame_frame("FeedbackTrue { reported: 1 } x").is_err());
    }
}
