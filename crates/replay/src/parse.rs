//! Inverse of [`radio_network::record_line`]: one JSONL trace line back
//! into a [`RoundRecord<String>`].
//!
//! Frames stay as the recorded **strings** (the encoder's rendering of
//! the protocol frame, `Debug` by default); decoding them back into
//! protocol messages is the job of [`crate::frames`]. Field order inside
//! the record is the line's order, and [`RoundRecord::from_parts`]
//! preserves it, so re-encoding a parsed line with
//! [`radio_network::record_line`] reproduces it byte-for-byte — the
//! round-trip guarantee pinned by `tests/roundtrip.rs`.

use radio_network::{ChannelId, Emission, NodeId, RoundRecord};
use secure_radio_bench::json::{self, Json};

fn arr_field<'a>(v: &'a Json, key: &str, context: &str) -> Result<&'a [Json], String> {
    json::field(v, key, context)?
        .as_array()
        .ok_or_else(|| format!("{context}: field \"{key}\" is not an array"))
}

/// Parse one trace line (no trailing newline required) into a
/// [`RoundRecord`] whose frames are the recorded frame strings.
///
/// The line must follow `docs/TRACE_FORMAT.md`: a single object with
/// `round`, `transmissions`, `listeners`, `adversary`, and a dense
/// `delivered` array (one slot per channel, `null` where nothing was
/// delivered). The record's channel count is the `delivered` length.
///
/// # Errors
/// On malformed JSON or any missing/ill-typed field; the message names
/// the offending field.
pub fn parse_record_line(line: &str) -> Result<RoundRecord<String>, String> {
    let v = Json::parse(line).map_err(|e| format!("trace line: {e}"))?;
    let round = json::u64_field(&v, "round", "trace line")?;

    let mut transmissions = Vec::new();
    for (i, entry) in arr_field(&v, "transmissions", "trace line")?
        .iter()
        .enumerate()
    {
        let ctx = format!("transmissions[{i}]");
        transmissions.push((
            NodeId(json::usize_field(entry, "node", &ctx)?),
            ChannelId(json::usize_field(entry, "channel", &ctx)?),
            json::str_field(entry, "frame", &ctx)?.to_string(),
        ));
    }

    let mut listeners = Vec::new();
    for (i, entry) in arr_field(&v, "listeners", "trace line")?.iter().enumerate() {
        let ctx = format!("listeners[{i}]");
        listeners.push((
            NodeId(json::usize_field(entry, "node", &ctx)?),
            ChannelId(json::usize_field(entry, "channel", &ctx)?),
        ));
    }

    let mut adversary = Vec::new();
    for (i, entry) in arr_field(&v, "adversary", "trace line")?.iter().enumerate() {
        let ctx = format!("adversary[{i}]");
        let channel = ChannelId(json::usize_field(entry, "channel", &ctx)?);
        let emission = match json::kind(entry, &ctx)? {
            "noise" => Emission::Noise,
            "spoof" => Emission::Spoof(json::str_field(entry, "frame", &ctx)?.to_string()),
            other => return Err(format!("{ctx}: unknown emission kind \"{other}\"")),
        };
        adversary.push((channel, emission));
    }

    let mut delivered = Vec::new();
    for (i, slot) in arr_field(&v, "delivered", "trace line")?.iter().enumerate() {
        delivered.push(match slot {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            _ => return Err(format!("delivered[{i}]: expected a frame string or null")),
        });
    }

    let mut record = RoundRecord::from_parts(round, transmissions, listeners, adversary, delivered);

    // Per-listener receptions exist only under diverging channel models;
    // the encoder omits the field entirely when there are none.
    if let Some(receptions) = v.get("receptions") {
        let entries = receptions
            .as_array()
            .ok_or_else(|| "trace line: field \"receptions\" is not an array".to_string())?;
        for (i, entry) in entries.iter().enumerate() {
            let ctx = format!("receptions[{i}]");
            record
                .reception_nodes
                .push(NodeId(json::usize_field(entry, "node", &ctx)?));
            record
                .reception_frames
                .push(match json::field(entry, "frame", &ctx)? {
                    Json::Null => None,
                    Json::Str(s) => Some(s.clone()),
                    _ => return Err(format!("{ctx}: \"frame\" must be a string or null")),
                });
        }
    }

    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_network::record_line;

    #[test]
    fn parses_the_format_doc_example() {
        let line = "{\"round\":17,\"transmissions\":[{\"node\":3,\"channel\":1,\"frame\":\"ping\"}],\
                    \"listeners\":[{\"node\":5,\"channel\":1}],\
                    \"adversary\":[{\"channel\":0,\"kind\":\"noise\"},{\"channel\":2,\"kind\":\"spoof\",\"frame\":\"fake\"}],\
                    \"delivered\":[null,\"ping\",null]}";
        let record = parse_record_line(line).expect("valid line");
        assert_eq!(record.round, 17);
        assert_eq!(record.channels, 3);
        assert_eq!(record.transmissions().count(), 1);
        assert_eq!(record.listeners().count(), 1);
        assert_eq!(record.adversary().count(), 2);
        assert_eq!(
            record.delivered_on(ChannelId(1)).map(String::as_str),
            Some("ping")
        );
        assert_eq!(record.delivered_on(ChannelId(0)), None);
        // And the re-encoding is byte-identical (whitespace-free input).
        let line: String = line.split_whitespace().collect::<Vec<_>>().join("");
        assert_eq!(record_line(&record, String::clone), line);
    }

    #[test]
    fn empty_round_roundtrips() {
        let record = RoundRecord::<String>::from_parts(
            0,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec![None, None],
        );
        let line = record_line(&record, String::clone);
        assert_eq!(parse_record_line(&line).expect("valid"), record);
    }

    #[test]
    fn control_characters_in_frames_roundtrip() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g\u{7f}π🦀".to_string();
        let record = RoundRecord::from_parts(
            3,
            vec![(NodeId(1), ChannelId(0), nasty.clone())],
            Vec::new(),
            vec![(ChannelId(1), Emission::Spoof(nasty.clone()))],
            vec![Some(nasty), None],
        );
        let line = record_line(&record, String::clone);
        assert_eq!(parse_record_line(&line).expect("valid"), record);
    }

    #[test]
    fn divergent_receptions_roundtrip() {
        let line = "{\"round\":4,\"transmissions\":[{\"node\":0,\"channel\":0,\"frame\":\"m\"}],\
                    \"listeners\":[{\"node\":2,\"channel\":0},{\"node\":3,\"channel\":0}],\
                    \"adversary\":[],\"delivered\":[\"m\",null],\
                    \"receptions\":[{\"node\":2,\"frame\":null},{\"node\":3,\"frame\":\"m\"}]}";
        let record = parse_record_line(line).expect("valid line");
        assert_eq!(
            record.receptions().collect::<Vec<_>>(),
            vec![(NodeId(2), None), (NodeId(3), Some(&"m".to_string()))]
        );
        assert_eq!(record_line(&record, String::clone), line);

        let bad = "{\"round\":0,\"transmissions\":[],\"listeners\":[],\"adversary\":[],\
                   \"delivered\":[null],\"receptions\":[{\"node\":0,\"frame\":7}]}";
        assert!(parse_record_line(bad)
            .unwrap_err()
            .contains("receptions[0]"));
    }

    #[test]
    fn rejects_missing_fields_and_bad_kinds() {
        assert!(parse_record_line("{}").unwrap_err().contains("round"));
        let no_frame = "{\"round\":0,\"transmissions\":[{\"node\":0,\"channel\":0}],\
                        \"listeners\":[],\"adversary\":[],\"delivered\":[null]}";
        assert!(parse_record_line(no_frame).unwrap_err().contains("frame"));
        let bad_kind = "{\"round\":0,\"transmissions\":[],\"listeners\":[],\
                        \"adversary\":[{\"channel\":0,\"kind\":\"jam\"}],\"delivered\":[null]}";
        assert!(parse_record_line(bad_kind)
            .unwrap_err()
            .contains("unknown emission kind"));
        let bad_slot = "{\"round\":0,\"transmissions\":[],\"listeners\":[],\
                        \"adversary\":[],\"delivered\":[7]}";
        assert!(parse_record_line(bad_slot)
            .unwrap_err()
            .contains("delivered[0]"));
    }
}
