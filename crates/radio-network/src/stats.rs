//! Aggregate execution statistics, kept exact regardless of trace retention.

use std::fmt;

/// Counters accumulated over an execution.
///
/// All counters are exact even when the [`Trace`](crate::Trace) retains only
/// a sliding window of rounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Rounds resolved.
    pub rounds: u64,
    /// Honest frames transmitted.
    pub honest_transmissions: u64,
    /// Honest frames delivered to at least one listener.
    pub honest_deliveries: u64,
    /// Honest transmissions lost to a collision (honest-honest or jam).
    pub collisions: u64,
    /// Adversary emissions (noise or spoof).
    pub adversary_transmissions: u64,
    /// Adversary spoofs that reached listeners (idle channel + listeners present).
    pub spoofs_delivered: u64,
    /// Adversary emissions that collided with at least one honest frame.
    pub jams_effective: u64,
    /// Listen actions that returned silence/collision.
    pub silent_receptions: u64,
    /// Listen actions that returned a frame (honest or spoofed).
    pub frames_received: u64,
    /// Round records discarded by a lossy [`TraceSink`](crate::TraceSink)
    /// (e.g. a full [`ChannelSink`](crate::ChannelSink) queue under
    /// [`OverflowPolicy::DropNewest`](crate::OverflowPolicy::DropNewest)).
    /// Always 0 for lossless sinks.
    pub dropped_records: u64,
}

impl Stats {
    /// Fraction of honest transmissions that were delivered, in `[0, 1]`.
    ///
    /// Returns `1.0` for an execution with no transmissions.
    pub fn delivery_rate(&self) -> f64 {
        if self.honest_transmissions == 0 {
            1.0
        } else {
            self.honest_deliveries as f64 / self.honest_transmissions as f64
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} tx={} delivered={} collisions={} adv_tx={} spoofed={} jams={} dropped={}",
            self.rounds,
            self.honest_transmissions,
            self.honest_deliveries,
            self.collisions,
            self.adversary_transmissions,
            self.spoofs_delivered,
            self.jams_effective,
            self.dropped_records,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_rate_handles_zero() {
        assert_eq!(Stats::default().delivery_rate(), 1.0);
        let s = Stats {
            honest_transmissions: 4,
            honest_deliveries: 1,
            ..Stats::default()
        };
        assert!((s.delivery_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Stats::default()).is_empty());
    }
}
