//! The round-resolution engine: pure channel semantics of the model.
//!
//! ## The arena-backed round core
//!
//! [`Network::resolve_round`] is the innermost loop of every experiment —
//! an f-AME epoch is millions of tiny rounds — so its steady state must
//! not touch the allocator. All per-round state lives in a [`RoundArena`]
//! owned by the network and reused across rounds:
//!
//! * honest transmissions are gathered into a flat arena (`tx_node` /
//!   `tx_chan`, node order) and grouped by channel through a counting-sort
//!   permutation (`order`) with per-channel `(start, len)` **spans** — no
//!   per-channel `Vec`s, and collision participant lists come straight
//!   from the spans instead of per-collision allocations; listeners get
//!   the same treatment (`l_order` / `l_spans`), so "any listener on this
//!   channel?" is an O(1) span lookup;
//! * per-channel outcomes are compact [`ChannelSlot`] tags; frames are
//!   *not* copied into the arena — they are borrowed from the caller's
//!   action storage and adversary action through the returned
//!   [`RoundView`];
//! * when the installed [`TraceSink`] keeps records, the
//!   [`RoundRecord`] is built in a **record arena** (one `RoundRecord`
//!   whose vectors are cleared and refilled each round) and handed to the
//!   sink by reference — sinks copy only what they retain or stream.
//!
//! ## The active-channel worklist
//!
//! Per-round cost is proportional to **activity**, not the channel
//! count. The arena keeps a per-channel epoch stamp (`touched`); the
//! first event on a channel in a round — honest transmission, listener,
//! or adversary emission — *touches* it: lazily resets that channel's
//! scratch and pushes it onto the `active` worklist. Span building,
//! outcome resolution, stats, and the record's sparse delivered set then
//! iterate only the (sorted) worklist. Channels never touched this round
//! are never read or written — their stale spans/slots are fenced off by
//! the epoch stamp — so a round over a million idle channels costs the
//! same as a round over ten. [`Network::resolve_round_sparse`] extends
//! the same contract to the *population*: it accepts only the actions of
//! awake nodes as sorted `(NodeId, Action)` pairs, making round cost
//! independent of `n` as well (the [`Simulation`](crate::Simulation)
//! driver's wake-queue feeds it).
//!
//! The result: with retention off (or a [`NullSink`]) a steady-state round
//! performs **zero** heap allocations (verified by the counting-allocator
//! test in `tests/zero_alloc.rs`), and with a bounded in-memory window the
//! retained records are recycled in place. Consumers that want the old
//! owned shape call [`RoundView::to_resolution`].

use crate::adversary::{AdversaryAction, Emission};
use crate::channel_model::{
    ChannelContext, ChannelModel, ChannelModelSpec, ChannelVerdict, EmissionKind, ListenerOutcome,
    TxSpan,
};
use crate::error::EngineError;
use crate::node::{Action, ChannelId, NodeId};
use crate::sink::{InMemorySink, NullSink, TraceSink};
use crate::stats::Stats;
use crate::trace::{RoundRecord, Trace, TraceRetention};

/// Static configuration of the radio network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkConfig {
    channels: usize,
    budget: usize,
    retention: TraceRetention,
    channel_model: ChannelModelSpec,
}

impl NetworkConfig {
    /// A network with `channels` channels and an adversary able to disrupt
    /// up to `budget` (= `t`) of them per round.
    ///
    /// # Errors
    ///
    /// * [`EngineError::TooFewChannels`] if `channels < 2` (the model
    ///   requires `C > 1`).
    /// * [`EngineError::BudgetTooLarge`] if `budget >= channels` (the model
    ///   requires `t < C`; with `t >= C` no communication is possible).
    pub fn new(channels: usize, budget: usize) -> Result<Self, EngineError> {
        if channels < 2 {
            return Err(EngineError::TooFewChannels { channels });
        }
        if budget >= channels {
            return Err(EngineError::BudgetTooLarge { budget, channels });
        }
        Ok(NetworkConfig {
            channels,
            budget,
            retention: TraceRetention::default(),
            channel_model: ChannelModelSpec::default(),
        })
    }

    /// The minimal interesting configuration of the paper: `C = t + 1`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkConfig::new`].
    pub fn minimal(t: usize) -> Result<Self, EngineError> {
        NetworkConfig::new(t + 1, t)
    }

    /// Replace the trace-retention policy (default: keep everything).
    #[must_use]
    pub fn with_retention(mut self, retention: TraceRetention) -> Self {
        self.retention = retention;
        self
    }

    /// Replace the channel model (default: [`ChannelModelSpec::Ideal`],
    /// the paper's semantics).
    #[must_use]
    pub fn with_channel_model(mut self, channel_model: ChannelModelSpec) -> Self {
        self.channel_model = channel_model;
        self
    }

    /// Number of channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Adversary budget `t`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Trace-retention policy.
    pub fn retention(&self) -> TraceRetention {
        self.retention
    }

    /// The channel model rounds resolve under.
    pub fn channel_model(&self) -> &ChannelModelSpec {
        &self.channel_model
    }
}

/// How a single channel resolved in one round (owned form; see
/// [`OutcomeView`] for the borrowed view the engine hands out).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChannelOutcome<M> {
    /// Nobody (honest or adversarial) transmitted.
    Idle,
    /// Exactly one honest transmitter: its frame was delivered.
    Delivered {
        /// The transmitting node.
        from: NodeId,
        /// The delivered frame.
        frame: M,
    },
    /// The adversary spoofed an otherwise idle channel: forged frame delivered.
    SpoofDelivered {
        /// The forged frame.
        frame: M,
    },
    /// Two or more transmitters (any mix of honest/adversarial): all lost.
    Collision {
        /// Honest transmitters involved.
        honest: Vec<NodeId>,
        /// `true` if the adversary contributed to the collision.
        adversary: bool,
    },
    /// The adversary emitted pure noise on an otherwise idle channel
    /// (indistinguishable from silence for listeners).
    NoiseOnly,
}

impl<M: Clone> ChannelOutcome<M> {
    /// The frame listeners on this channel receive (`None` = silence/collision).
    pub fn heard(&self) -> Option<M> {
        match self {
            ChannelOutcome::Delivered { frame, .. } | ChannelOutcome::SpoofDelivered { frame } => {
                Some(frame.clone())
            }
            _ => None,
        }
    }
}

/// The full resolution of one round in owned form — the escape hatch for
/// consumers that need the round to outlive the network borrow. Produced
/// by [`RoundView::to_resolution`]; allocates, so keep it off hot paths.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundResolution<M> {
    /// Round number resolved.
    pub round: u64,
    /// Outcome per channel, indexed by channel id.
    pub outcomes: Vec<ChannelOutcome<M>>,
}

impl<M: Clone> RoundResolution<M> {
    /// What a listener tuned to `channel` hears.
    pub fn heard_on(&self, channel: ChannelId) -> Option<M> {
        self.outcomes[channel.index()].heard()
    }
}

/// Compact per-channel outcome tag stored in the arena. Frames are not
/// copied here — [`RoundView`] resolves the indices against the caller's
/// action storage and adversary action.
#[derive(Clone, Copy, Debug)]
enum ChannelSlot {
    /// Nobody transmitted.
    Idle,
    /// Adversary noise on an otherwise idle channel.
    NoiseOnly,
    /// Exactly one honest transmitter: index into the arena's
    /// transmission arrays (`tx_node` / `tx_src`).
    Delivered { tx: u32 },
    /// Adversary spoof on an otherwise idle channel: index into the
    /// adversary's transmission list.
    Spoof { adv: u32 },
    /// Two or more transmitters (participants = the channel's span).
    Collision { adversary: bool },
}

/// The caller's action storage, dense (`actions[i]` = node `i`) or sparse
/// (node-sorted `(NodeId, Action)` pairs of awake nodes only). The arena
/// stores per-transmission *source indices* into this storage, so frame
/// lookups stay O(1) on both paths.
#[derive(Debug)]
enum ActionsRef<'a, M> {
    /// One action per node, indexed by node id.
    Dense(&'a [Action<M>]),
    /// Only the awake nodes' actions, sorted by node id.
    Sparse(&'a [(NodeId, Action<M>)]),
}

impl<M> Clone for ActionsRef<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for ActionsRef<'_, M> {}

impl<'a, M> ActionsRef<'a, M> {
    #[inline]
    fn get(&self, src: u32) -> &'a Action<M> {
        match self {
            ActionsRef::Dense(actions) => &actions[src as usize],
            ActionsRef::Sparse(pairs) => &pairs[src as usize].1,
        }
    }
}

/// Reusable per-round storage: flat struct-of-arrays gather buffers, the
/// counting-sort permutations (transmitters *and* listeners) with
/// per-channel spans, per-channel outcome slots behind an epoch-stamped
/// active-channel worklist, and the record arena. Flat buffers are
/// cleared (never shrunk) between rounds; per-channel buffers are reset
/// *lazily on first touch*, so after warm-up a round costs O(activity)
/// and allocates nothing.
#[derive(Debug)]
struct RoundArena<M> {
    /// Monotonic round-reset counter; `touched[ch] == epoch` fences off
    /// per-channel state written in earlier rounds.
    epoch: u64,
    /// Per channel: the epoch that last touched it.
    touched: Vec<u64>,
    /// The worklist: channels touched this round (sorted ascending once
    /// gathering completes, so worklist iteration is channel-major like
    /// the dense `0..C` loop it replaces).
    active: Vec<u32>,
    /// Transmitting node ids, in gather (= node) order.
    tx_node: Vec<u32>,
    /// Channel of each transmission (parallel to `tx_node`).
    tx_chan: Vec<u32>,
    /// Index of each transmission into the caller's action storage
    /// (parallel to `tx_node`; equals the node id on the dense path, the
    /// pair index on the sparse path).
    tx_src: Vec<u32>,
    /// Channel-grouped permutation: indices into the transmission arrays,
    /// sorted by (channel, gather order) via a stable counting sort.
    order: Vec<u32>,
    /// Per channel: `(start, len)` span into `order`.
    spans: Vec<(u32, u32)>,
    /// Counting-sort scratch: per-channel counts, then write cursors.
    counts: Vec<u32>,
    /// Honest listeners this round, in gather (= node) order.
    listeners: Vec<(NodeId, ChannelId)>,
    /// Channel-grouped permutation over `listeners`.
    l_order: Vec<u32>,
    /// Per channel: `(start, len)` span into `l_order`.
    l_spans: Vec<(u32, u32)>,
    /// Counting-sort scratch for listeners.
    l_counts: Vec<u32>,
    /// Per channel, the index into the adversary's transmission list
    /// (doubles as the duplicate-channel check).
    adv_idx: Vec<Option<u32>>,
    /// Per-channel outcome tags.
    slots: Vec<ChannelSlot>,
    /// Record arena: rebuilt in place each round the sink keeps records.
    record: RoundRecord<M>,
}

impl<M> RoundArena<M> {
    fn new(channels: usize) -> Self {
        let mut arena = RoundArena {
            epoch: 0,
            touched: Vec::new(),
            active: Vec::new(),
            tx_node: Vec::new(),
            tx_chan: Vec::new(),
            tx_src: Vec::new(),
            order: Vec::new(),
            spans: Vec::new(),
            counts: Vec::new(),
            listeners: Vec::new(),
            l_order: Vec::new(),
            l_spans: Vec::new(),
            l_counts: Vec::new(),
            adv_idx: Vec::new(),
            slots: Vec::new(),
            record: RoundRecord::empty(),
        };
        arena.begin(channels);
        arena
    }

    // detlint: deny-alloc(start) arena per-round reset (begin/touch)
    /// Reset for a new round over `channels` channels. Flat buffers are
    /// cleared (O(activity of the previous round)); per-channel buffers
    /// are *not* — bumping the epoch invalidates them wholesale, and
    /// [`RoundArena::touch`] resets each channel's slice lazily on its
    /// first event. Only a channel-count change (see
    /// [`Network::reconfigure`]) pays an O(C) re-size, which also wipes
    /// every stale stamp.
    fn begin(&mut self, channels: usize) {
        self.tx_node.clear();
        self.tx_chan.clear();
        self.tx_src.clear();
        self.order.clear();
        self.listeners.clear();
        self.l_order.clear();
        self.active.clear();
        self.epoch += 1;
        if self.touched.len() != channels {
            self.touched.clear();
            self.touched.resize(channels, 0);
            self.counts.clear();
            self.counts.resize(channels, 0);
            self.l_counts.clear();
            self.l_counts.resize(channels, 0);
            self.adv_idx.clear();
            self.adv_idx.resize(channels, None);
            self.spans.clear();
            self.spans.resize(channels, (0, 0));
            self.l_spans.clear();
            self.l_spans.resize(channels, (0, 0));
            self.slots.clear();
            self.slots.resize(channels, ChannelSlot::Idle);
        }
    }

    /// First event on `ch` this round: reset its scratch and put it on
    /// the worklist. Idempotent within a round via the epoch stamp.
    #[inline]
    fn touch(&mut self, ch: usize) {
        if self.touched[ch] != self.epoch {
            self.touched[ch] = self.epoch;
            self.counts[ch] = 0;
            self.l_counts[ch] = 0;
            self.adv_idx[ch] = None;
            self.active.push(ch as u32);
        }
    }

    /// `true` if `ch` saw any event this round (stale per-channel state
    /// from earlier rounds is fenced off by this check).
    #[inline]
    fn is_touched(&self, ch: usize) -> bool {
        self.touched[ch] == self.epoch
    }
    // detlint: deny-alloc(end)
}

/// A borrowed view of one resolved round — the allocation-free return
/// shape of [`Network::resolve_round`].
///
/// The view borrows three things for its lifetime: the network's
/// round arena (outcome tags, spans, listeners), the caller's action
/// storage (honest frames), and the adversary action (spoofed frames).
/// Nothing is copied; [`RoundView::heard_on`] and the outcome iterators
/// hand out `&M`. Call [`RoundView::to_resolution`] for the owned
/// [`RoundResolution`] escape hatch.
#[derive(Clone, Copy, Debug)]
pub struct RoundView<'a, M> {
    round: u64,
    arena: &'a RoundArena<M>,
    actions: ActionsRef<'a, M>,
    adversary: &'a AdversaryAction<M>,
    model: &'a dyn ChannelModel,
    model_seed: u64,
}

/// Build the [`ChannelContext`] of one channel from the arena, fencing
/// off stale per-channel state: an untouched channel presents an empty
/// transmitter span and no adversary, whatever earlier rounds left
/// behind.
fn model_ctx<'a, M>(
    arena: &'a RoundArena<M>,
    adversary: &'a AdversaryAction<M>,
    model_seed: u64,
    round: u64,
    ch: usize,
) -> ChannelContext<'a> {
    let ((start, len), adv) = if arena.is_touched(ch) {
        (arena.spans[ch], arena.adv_idx[ch])
    } else {
        ((0, 0), None)
    };
    ChannelContext {
        seed: model_seed,
        round,
        channel: ChannelId(ch),
        transmitters: TxSpan::new(
            &arena.order[start as usize..(start + len) as usize],
            &arena.tx_node,
        ),
        adversary: adv.map(|a| match &adversary.transmissions[a as usize].1 {
            Emission::Noise => EmissionKind::Noise,
            Emission::Spoof(_) => EmissionKind::Spoof,
        }),
    }
}

/// Borrowed per-channel outcome, produced by [`RoundView::outcome`].
#[derive(Clone, Copy, Debug)]
pub enum OutcomeView<'a, M> {
    /// Nobody (honest or adversarial) transmitted.
    Idle,
    /// Adversary noise on an otherwise idle channel (sounds like silence).
    NoiseOnly,
    /// Exactly one honest transmitter: its frame was delivered.
    Delivered {
        /// The transmitting node.
        from: NodeId,
        /// The delivered frame (borrowed from the caller's action storage).
        frame: &'a M,
    },
    /// The adversary spoofed an otherwise idle channel.
    SpoofDelivered {
        /// The forged frame (borrowed from the adversary action).
        frame: &'a M,
    },
    /// Two or more transmitters: all lost.
    Collision {
        /// The honest participants (iterate without allocating).
        honest: Participants<'a, M>,
        /// `true` if the adversary contributed to the collision.
        adversary: bool,
    },
}

impl<'a, M> OutcomeView<'a, M> {
    /// The frame listeners on this channel receive (`None` =
    /// silence/collision).
    pub fn heard(&self) -> Option<&'a M> {
        match self {
            OutcomeView::Delivered { frame, .. } | OutcomeView::SpoofDelivered { frame } => {
                Some(frame)
            }
            _ => None,
        }
    }
}

/// The honest transmitters involved in one channel's collision — a
/// borrowed span over the arena, iterable without allocation.
#[derive(Clone, Copy, Debug)]
pub struct Participants<'a, M> {
    /// The channel's slice of the arena's `order` permutation.
    span: &'a [u32],
    tx_node: &'a [u32],
    tx_src: &'a [u32],
    actions: ActionsRef<'a, M>,
}

impl<'a, M> Participants<'a, M> {
    /// Number of honest transmitters in the collision.
    pub fn len(&self) -> usize {
        self.span.len()
    }

    /// `true` when no honest node was involved (pure adversary collision
    /// never happens — a lone emission resolves to noise or spoof).
    pub fn is_empty(&self) -> bool {
        self.span.is_empty()
    }

    /// The participating nodes, in node order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        let tx_node = self.tx_node;
        self.span
            .iter()
            .map(move |&tx| NodeId(tx_node[tx as usize] as usize))
    }

    /// The participating nodes with the frames they lost, in node order.
    pub fn frames(&self) -> impl Iterator<Item = (NodeId, &'a M)> + 'a {
        let (tx_node, tx_src, actions) = (self.tx_node, self.tx_src, self.actions);
        self.span.iter().map(move |&tx| {
            let node = NodeId(tx_node[tx as usize] as usize);
            match actions.get(tx_src[tx as usize]) {
                Action::Transmit { frame, .. } => (node, frame),
                _ => unreachable!("gathered transmissions come from Transmit actions"),
            }
        })
    }
}

impl<'a, M> RoundView<'a, M> {
    /// Round number resolved.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of channels in the round.
    pub fn channels(&self) -> usize {
        self.arena.slots.len()
    }

    /// The channel's outcome tag, fenced by the epoch stamp: a channel
    /// untouched this round is idle regardless of what a previous round
    /// left in its slot.
    #[inline]
    fn slot(&self, ch: usize) -> ChannelSlot {
        if self.arena.is_touched(ch) {
            self.arena.slots[ch]
        } else {
            ChannelSlot::Idle
        }
    }

    /// What a listener tuned to `channel` hears (`None` =
    /// silence/collision). Borrowed — clone only if you keep it.
    pub fn heard_on(&self, channel: ChannelId) -> Option<&'a M> {
        match self.slot(channel.index()) {
            ChannelSlot::Delivered { tx } => {
                match self.actions.get(self.arena.tx_src[tx as usize]) {
                    Action::Transmit { frame, .. } => Some(frame),
                    _ => unreachable!("delivered slot points at a Transmit action"),
                }
            }
            ChannelSlot::Spoof { adv } => match &self.adversary.transmissions[adv as usize].1 {
                Emission::Spoof(frame) => Some(frame),
                Emission::Noise => unreachable!("spoof slot points at a Spoof emission"),
            },
            _ => None,
        }
    }

    /// What `node`, listening on `channel`, actually receives — the
    /// channel-model-aware sibling of [`RoundView::heard_on`]. Under
    /// non-diverging models (ideal, capture) the two agree exactly; under
    /// per-listener models (lossy, geometric) this consults the model for
    /// the listener's own truth. Drivers distributing receptions must use
    /// this one.
    pub fn reception_for(&self, node: NodeId, channel: ChannelId) -> Option<&'a M> {
        if !self.model.diverges() {
            return self.heard_on(channel);
        }
        let ch = channel.index();
        let ctx = model_ctx(self.arena, self.adversary, self.model_seed, self.round, ch);
        match self.model.listener_outcome(&ctx, node) {
            ListenerOutcome::Channel => self.heard_on(channel),
            ListenerOutcome::Nothing => None,
            ListenerOutcome::Honest { idx } => {
                let tx = ctx.transmitters.tx(idx);
                match self.actions.get(self.arena.tx_src[tx as usize]) {
                    Action::Transmit { frame, .. } => Some(frame),
                    _ => unreachable!("transmitter span points at Transmit actions"),
                }
            }
            ListenerOutcome::Adversary => {
                let adv = if self.arena.is_touched(ch) {
                    self.arena.adv_idx[ch]
                } else {
                    None
                };
                match adv.map(|a| &self.adversary.transmissions[a as usize].1) {
                    Some(Emission::Spoof(frame)) => Some(frame),
                    // A noise emission (or no emission) delivers nothing.
                    _ => None,
                }
            }
        }
    }

    /// The borrowed outcome of `channel`.
    pub fn outcome(&self, channel: ChannelId) -> OutcomeView<'a, M> {
        let ch = channel.index();
        match self.slot(ch) {
            ChannelSlot::Idle => OutcomeView::Idle,
            ChannelSlot::NoiseOnly => OutcomeView::NoiseOnly,
            ChannelSlot::Delivered { tx } => OutcomeView::Delivered {
                from: NodeId(self.arena.tx_node[tx as usize] as usize),
                frame: self.heard_on(channel).expect("delivered channel heard"),
            },
            ChannelSlot::Spoof { .. } => OutcomeView::SpoofDelivered {
                frame: self.heard_on(channel).expect("spoofed channel heard"),
            },
            ChannelSlot::Collision { adversary } => OutcomeView::Collision {
                honest: self.participants(channel),
                adversary,
            },
        }
    }

    /// Iterator over all channels' borrowed outcomes, in channel order.
    pub fn outcomes(&self) -> impl Iterator<Item = OutcomeView<'a, M>> + '_ {
        (0..self.channels()).map(move |ch| self.outcome(ChannelId(ch)))
    }

    /// The channels that saw any activity this round — an honest
    /// transmission, a listener, or an adversary emission — ascending.
    /// Every channel *not* in this set resolved [`OutcomeView::Idle`];
    /// iterating it costs O(activity), unlike the dense
    /// [`RoundView::outcomes`] / [`RoundView::delivered`] sweeps.
    pub fn active_channels(&self) -> impl Iterator<Item = ChannelId> + 'a {
        self.arena.active.iter().map(|&ch| ChannelId(ch as usize))
    }

    /// Per-channel delivered frames, in channel order (`None` =
    /// silence/collision) — the borrowed equivalent of
    /// [`RoundRecord::delivered_dense`].
    pub fn delivered(&self) -> impl Iterator<Item = Option<&'a M>> + '_ {
        (0..self.channels()).map(move |ch| self.heard_on(ChannelId(ch)))
    }

    /// The honest transmitters on `channel`: every node that chose
    /// [`Action::Transmit`] there this round, in node order — the single
    /// transmitter of a delivered channel, the one honest loser of a
    /// jammed delivery, or all parties of an honest collision. Not a
    /// collision test — match on [`RoundView::outcome`] for that.
    pub fn participants(&self, channel: ChannelId) -> Participants<'a, M> {
        let ch = channel.index();
        let (start, len) = if self.arena.is_touched(ch) {
            self.arena.spans[ch]
        } else {
            (0, 0)
        };
        Participants {
            span: &self.arena.order[start as usize..(start + len) as usize],
            tx_node: &self.arena.tx_node,
            tx_src: &self.arena.tx_src,
            actions: self.actions,
        }
    }

    /// The honest listeners of the round, in node order.
    pub fn listeners(&self) -> &'a [(NodeId, ChannelId)] {
        &self.arena.listeners
    }

    /// The honest listeners tuned to `channel`, in node order — an O(1)
    /// span lookup, not a scan of the listener list.
    pub fn listeners_on(&self, channel: ChannelId) -> impl Iterator<Item = NodeId> + 'a {
        let ch = channel.index();
        let (start, len) = if self.arena.is_touched(ch) {
            self.arena.l_spans[ch]
        } else {
            (0, 0)
        };
        let listeners = &self.arena.listeners;
        self.arena.l_order[start as usize..(start + len) as usize]
            .iter()
            .map(move |&li| listeners[li as usize].0)
    }
}

impl<M: Clone> RoundView<'_, M> {
    /// Materialize the owned [`RoundResolution`] — the migration escape
    /// hatch for consumers that need the round to outlive the network
    /// borrow. Allocates the outcome vector and clones delivered/collided
    /// frames; steady-state consumers should use the borrowed accessors.
    pub fn to_resolution(&self) -> RoundResolution<M> {
        let outcomes = (0..self.channels())
            .map(|ch| match self.outcome(ChannelId(ch)) {
                OutcomeView::Idle => ChannelOutcome::Idle,
                OutcomeView::NoiseOnly => ChannelOutcome::NoiseOnly,
                OutcomeView::Delivered { from, frame } => ChannelOutcome::Delivered {
                    from,
                    frame: frame.clone(),
                },
                OutcomeView::SpoofDelivered { frame } => ChannelOutcome::SpoofDelivered {
                    frame: frame.clone(),
                },
                OutcomeView::Collision { honest, adversary } => ChannelOutcome::Collision {
                    honest: honest.nodes().collect(),
                    adversary,
                },
            })
            .collect();
        RoundResolution {
            round: self.round,
            outcomes,
        }
    }
}

/// The radio medium: resolves rounds, hands each finished round to a
/// [`TraceSink`], and accumulates [`Stats`].
///
/// `Network` is deliberately free of nodes and adversaries — it is a pure
/// referee. Use [`Simulation`](crate::Simulation) to drive full protocol
/// stacks, or call [`Network::resolve_round`] directly in unit tests.
#[derive(Debug)]
pub struct Network<M> {
    cfg: NetworkConfig,
    round: u64,
    sink: Box<dyn TraceSink<M>>,
    stats: Stats,
    arena: RoundArena<M>,
    /// The live channel model built from the config's spec.
    model: Box<dyn ChannelModel>,
    /// Base seed for the model's deterministic draws (see
    /// [`Network::seed_channel_model`]).
    model_seed: u64,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> Network<M> {
    /// A fresh network at round 0, observing rounds with the default
    /// in-memory sink: [`NullSink`] under [`TraceRetention::None`],
    /// [`InMemorySink`] with the config's retention otherwise.
    pub fn new(cfg: NetworkConfig) -> Self {
        let sink: Box<dyn TraceSink<M>> = match cfg.retention() {
            TraceRetention::None => Box::new(NullSink::new()),
            retention => Box::new(InMemorySink::new(retention)),
        };
        Network::with_sink(cfg, sink)
    }

    /// A fresh network handing every finished round to `sink` instead of
    /// the default in-memory trace. The config's
    /// [`retention`](NetworkConfig::retention) is ignored — the sink
    /// alone decides what is stored (and whether records are built at
    /// all, via [`TraceSink::wants_records`]).
    pub fn with_sink(cfg: NetworkConfig, sink: Box<dyn TraceSink<M>>) -> Self {
        let arena = RoundArena::new(cfg.channels());
        let model = cfg.channel_model().build();
        Network {
            cfg,
            round: 0,
            sink,
            stats: Stats::default(),
            arena,
            model,
            model_seed: 0,
        }
    }

    /// Set the base seed of the channel model's deterministic draws.
    ///
    /// Drivers derive it from the run seed on the reserved stream
    /// (`seed::derive(seed, u64::MAX)` — node reseeding uses streams
    /// `0..n`), so a run is reproducible from its seed alone and
    /// per-node streams never collide with the model's. The default of
    /// `0` is fine for ideal (seed-free) rounds and for direct
    /// [`Network::resolve_round`] use in tests.
    pub fn seed_channel_model(&mut self, seed: u64) {
        self.model_seed = seed;
    }

    /// The configuration this network runs with.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The next round to be resolved.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The execution history retained by the sink (empty — but with an
    /// exact completed-round count — for streaming/null sinks).
    pub fn trace(&self) -> &Trace<M> {
        self.sink.history()
    }

    /// The sink observing this network's rounds.
    pub fn sink(&self) -> &dyn TraceSink<M> {
        self.sink.as_ref()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Swap the network's configuration mid-suite, keeping the warm
    /// round arena, the installed sink, the round counter, and the
    /// accumulated [`Stats`].
    ///
    /// Intended for experiment suites that re-point one long-lived network
    /// at successive `(C, t)` operating points without paying arena
    /// warm-up per point. The arena re-sizes its per-channel storage on
    /// the next round; no span, listener, or slot from the previous
    /// configuration survives (`tests` pin this). The *sink* is kept as
    /// is — [`NetworkConfig::retention`] only selects a sink at
    /// construction time, so reconfigure with a different retention has no
    /// retroactive effect; install a new sink via [`Network::with_sink`]
    /// construction if the retention policy itself must change.
    pub fn reconfigure(&mut self, cfg: NetworkConfig) {
        // Rebuild the model only when the spec changed, so re-pointing a
        // long-lived network at successive (C, t) points stays cheap.
        if self.cfg.channel_model() != cfg.channel_model() {
            self.model = cfg.channel_model().build();
        }
        self.cfg = cfg;
    }

    /// Resolve one round given every honest action and the adversary's move.
    ///
    // detlint: deny-alloc(start) round resolution (resolve_round / resolve_round_sparse / gather_one / finish)
    //
    // The static complement of tests/zero_alloc.rs: a steady-state round
    // with retention off must not allocate, and with the recycled
    // LastRounds window only the record-arena frame clones below (each
    // carrying its own allow) may. Scratch vectors reuse capacity;
    // `resize`/`push` on them is growth to the high-water mark, not a
    // per-round cost.
    /// `actions[i]` is the action of node `i`. Returns a borrowed
    /// [`RoundView`] over per-channel outcomes; the caller distributes
    /// receptions to listeners (or uses [`Simulation`](crate::Simulation)
    /// which does so automatically). The view borrows `actions` and
    /// `adversary` alongside the network — materialize with
    /// [`RoundView::to_resolution`] if the round must outlive them.
    ///
    /// # Errors
    ///
    /// * [`EngineError::ChannelOutOfRange`] /
    ///   [`EngineError::AdversaryChannelOutOfRange`] on bad channels;
    /// * [`EngineError::AdversaryBudgetExceeded`] if the adversary used more
    ///   than `t` channels;
    /// * [`EngineError::AdversaryDuplicateChannel`] if it listed one channel
    ///   twice.
    pub fn resolve_round<'a>(
        &'a mut self,
        actions: &'a [Action<M>],
        adversary: &'a AdversaryAction<M>,
    ) -> Result<RoundView<'a, M>, EngineError> {
        let c = self.cfg.channels();
        self.arena.begin(c);

        // -- gather + validate honest actions in one pass ------------------
        // A validation failure may leave the arena partially filled: it is
        // scratch, fully invalidated by the next round's `begin` (epoch
        // bump), and no stats, round counter, or sink effect has happened
        // yet. Honest-channel errors stay detected before the adversary
        // checks in `finish`, exactly as the two-pass validation ordered
        // them.
        for (i, action) in actions.iter().enumerate() {
            self.gather_one(i, i, action, c)?;
        }

        let round = self.round;
        self.finish(ActionsRef::Dense(actions), adversary)?;
        Ok(RoundView {
            round,
            arena: &self.arena,
            actions: ActionsRef::Dense(actions),
            adversary,
            model: self.model.as_ref(),
            model_seed: self.model_seed,
        })
    }

    /// Resolve one round given only the actions of **awake** nodes, as
    /// `(node, action)` pairs sorted strictly ascending by node id — the
    /// O(active) sibling of [`Network::resolve_round`] fed by the
    /// [`Simulation`](crate::Simulation) wake-queue.
    ///
    /// Every node absent from `actions` is treated exactly as if it had
    /// submitted [`Action::Sleep`]: given the same awake set, this path
    /// is bit-identical to the dense one (outcomes, stats, trace records
    /// — `tests/arena_equivalence.rs` pins it), but its cost is
    /// proportional to `actions.len()` rather than the population.
    ///
    /// # Panics
    ///
    /// Debug builds assert the strict node-id ordering; release builds
    /// rely on it (an unsorted list changes the order of per-channel
    /// participant spans and trace records).
    ///
    /// # Errors
    ///
    /// Same as [`Network::resolve_round`].
    pub fn resolve_round_sparse<'a>(
        &'a mut self,
        actions: &'a [(NodeId, Action<M>)],
        adversary: &'a AdversaryAction<M>,
    ) -> Result<RoundView<'a, M>, EngineError> {
        debug_assert!(
            actions.windows(2).all(|w| w[0].0 < w[1].0),
            "sparse actions must be sorted strictly ascending by node id"
        );
        let c = self.cfg.channels();
        self.arena.begin(c);

        for (src, (node, action)) in actions.iter().enumerate() {
            self.gather_one(node.index(), src, action, c)?;
        }

        let round = self.round;
        self.finish(ActionsRef::Sparse(actions), adversary)?;
        Ok(RoundView {
            round,
            arena: &self.arena,
            actions: ActionsRef::Sparse(actions),
            adversary,
            model: self.model.as_ref(),
            model_seed: self.model_seed,
        })
    }

    /// Gather one honest action into the arena: validate its channel,
    /// touch the channel onto the worklist, and append to the flat
    /// transmission/listener buffers. `src` is the action's index in the
    /// caller's storage (= `node` on the dense path).
    #[inline]
    fn gather_one(
        &mut self,
        node: usize,
        src: usize,
        action: &Action<M>,
        channels: usize,
    ) -> Result<(), EngineError> {
        match action {
            Action::Transmit { channel, .. } => {
                let ch = channel.index();
                if ch >= channels {
                    return Err(EngineError::ChannelOutOfRange {
                        node: NodeId(node),
                        channel: *channel,
                        channels,
                    });
                }
                self.arena.touch(ch);
                self.arena.tx_node.push(node as u32);
                self.arena.tx_chan.push(ch as u32);
                self.arena.tx_src.push(src as u32);
                self.arena.counts[ch] += 1;
            }
            Action::Listen { channel } => {
                let ch = channel.index();
                if ch >= channels {
                    return Err(EngineError::ChannelOutOfRange {
                        node: NodeId(node),
                        channel: *channel,
                        channels,
                    });
                }
                self.arena.touch(ch);
                self.arena.listeners.push((NodeId(node), *channel));
                self.arena.l_counts[ch] += 1;
            }
            Action::Sleep => {}
        }
        Ok(())
    }

    /// The shared second half of round resolution: validate the adversary
    /// (touching its channels onto the worklist), sort the worklist into
    /// channel-major order, build transmitter + listener spans, resolve
    /// outcome tags, accumulate stats, and hand the record to the sink —
    /// every per-channel step iterating the active worklist only.
    fn finish(
        &mut self,
        actions: ActionsRef<'_, M>,
        adversary: &AdversaryAction<M>,
    ) -> Result<(), EngineError> {
        let c = self.cfg.channels();

        if adversary.len() > self.cfg.budget() {
            return Err(EngineError::AdversaryBudgetExceeded {
                used: adversary.len(),
                budget: self.cfg.budget(),
                round: self.round,
            });
        }
        for (i, (ch, _)) in adversary.transmissions.iter().enumerate() {
            if ch.index() >= c {
                return Err(EngineError::AdversaryChannelOutOfRange {
                    channel: *ch,
                    channels: c,
                });
            }
            self.arena.touch(ch.index());
            if self.arena.adv_idx[ch.index()].is_some() {
                return Err(EngineError::AdversaryDuplicateChannel {
                    channel: *ch,
                    round: self.round,
                });
            }
            self.arena.adv_idx[ch.index()] = Some(i as u32);
        }

        // Channel-major worklist order: iterating the sorted active list
        // visits channels exactly as the dense `0..C` loops did, so span
        // layout, records, and stats are bit-identical to the dense path.
        self.arena.active.sort_unstable();

        // -- group by channel: spans + stable counting-sort permutations ---
        {
            let RoundArena {
                active,
                counts,
                spans,
                order,
                tx_node,
                tx_chan,
                l_counts,
                l_spans,
                l_order,
                listeners,
                ..
            } = &mut self.arena;

            let mut start = 0u32;
            for &ch in active.iter() {
                let ch = ch as usize;
                let len = counts[ch];
                spans[ch] = (start, len);
                counts[ch] = start; // becomes the write cursor
                start += len;
            }
            order.resize(tx_node.len(), 0);
            for (tx, &ch) in tx_chan.iter().enumerate() {
                let cursor = &mut counts[ch as usize];
                order[*cursor as usize] = tx as u32;
                *cursor += 1;
            }

            let mut l_start = 0u32;
            for &ch in active.iter() {
                let ch = ch as usize;
                let len = l_counts[ch];
                l_spans[ch] = (l_start, len);
                l_counts[ch] = l_start;
                l_start += len;
            }
            l_order.resize(listeners.len(), 0);
            for (li, &(_, ch)) in listeners.iter().enumerate() {
                let cursor = &mut l_counts[ch.index()];
                l_order[*cursor as usize] = li as u32;
                *cursor += 1;
            }
        }

        // -- resolve (tags only; frames stay where they are) ---------------
        //
        // The channel model decides each channel's wire outcome: the
        // ideal model always returns `Classic` (the paper's semantics,
        // reproduced verbatim below), other models may override with a
        // capture delivery or a forced collision. Verdicts are mapped
        // back onto the same compact slot tags, so everything downstream
        // (stats, records, views) is model-agnostic.
        {
            let model_seed = self.model_seed;
            let round = self.round;
            for i in 0..self.arena.active.len() {
                let ch = self.arena.active[i] as usize;
                let verdict = {
                    let ctx = model_ctx(&self.arena, adversary, model_seed, round, ch);
                    self.model.resolve(&ctx)
                };
                let (span_start, span_len) = self.arena.spans[ch];
                let adv_slot = self.arena.adv_idx[ch];
                let classic = match (span_len, adv_slot) {
                    (0, None) => ChannelSlot::Idle,
                    (0, Some(adv)) => match &adversary.transmissions[adv as usize].1 {
                        Emission::Noise => ChannelSlot::NoiseOnly,
                        Emission::Spoof(_) => ChannelSlot::Spoof { adv },
                    },
                    (1, None) => ChannelSlot::Delivered {
                        tx: self.arena.order[span_start as usize],
                    },
                    // one honest + adversary, or >=2 honest: collision.
                    (_, adv) => ChannelSlot::Collision {
                        adversary: adv.is_some(),
                    },
                };
                self.arena.slots[ch] = match verdict {
                    ChannelVerdict::Classic => classic,
                    ChannelVerdict::DeliverHonest { idx } => {
                        assert!(
                            idx < span_len as usize,
                            "channel model delivered an out-of-span transmitter"
                        );
                        ChannelSlot::Delivered {
                            tx: self.arena.order[span_start as usize + idx],
                        }
                    }
                    ChannelVerdict::DeliverAdversary => match adv_slot {
                        Some(adv)
                            if matches!(
                                &adversary.transmissions[adv as usize].1,
                                Emission::Spoof(_)
                            ) =>
                        {
                            ChannelSlot::Spoof { adv }
                        }
                        // Nothing to deliver (no spoof on the channel):
                        // fall back to the classic outcome.
                        _ => classic,
                    },
                    ChannelVerdict::Collision => ChannelSlot::Collision {
                        adversary: adv_slot.is_some(),
                    },
                };
            }
        }

        // -- stats ---------------------------------------------------------
        self.stats.rounds += 1;
        self.stats.adversary_transmissions += adversary.len() as u64;
        {
            let arena = &self.arena;
            for &ch in &arena.active {
                let ch = ch as usize;
                // Honest transmitters beyond the delivered one exist only
                // under non-ideal models (capture); under the ideal model
                // a Delivered span is exactly 1 and a Spoof span exactly
                // 0, reproducing the original counts bit for bit.
                match arena.slots[ch] {
                    ChannelSlot::Delivered { .. } => {
                        let involved = u64::from(arena.spans[ch].1);
                        self.stats.honest_transmissions += involved;
                        self.stats.honest_deliveries += 1;
                        self.stats.collisions += involved.saturating_sub(1);
                    }
                    ChannelSlot::Spoof { .. } => {
                        let involved = u64::from(arena.spans[ch].1);
                        self.stats.honest_transmissions += involved;
                        self.stats.collisions += involved;
                        if involved > 0 {
                            self.stats.jams_effective += 1;
                        }
                        // O(1) listener-span lookup, not a listener scan.
                        if arena.l_spans[ch].1 > 0 {
                            self.stats.spoofs_delivered += 1;
                        }
                    }
                    ChannelSlot::Collision { adversary } => {
                        let involved = u64::from(arena.spans[ch].1);
                        self.stats.honest_transmissions += involved;
                        self.stats.collisions += involved;
                        if adversary {
                            self.stats.jams_effective += 1;
                        }
                    }
                    ChannelSlot::Idle | ChannelSlot::NoiseOnly => {}
                }
            }
            if !self.model.diverges() {
                for &(_, ch) in &arena.listeners {
                    // Listener channels are always touched, so the slot is live.
                    match arena.slots[ch.index()] {
                        ChannelSlot::Delivered { .. } | ChannelSlot::Spoof { .. } => {
                            self.stats.frames_received += 1;
                        }
                        _ => self.stats.silent_receptions += 1,
                    }
                }
            } else {
                // Per-listener models: ask the model what each listener
                // actually received (same dispatch as
                // [`RoundView::reception_for`]).
                for &(node, ch) in &arena.listeners {
                    let ch = ch.index();
                    let ctx = model_ctx(arena, adversary, self.model_seed, self.round, ch);
                    let heard = match self.model.listener_outcome(&ctx, node) {
                        ListenerOutcome::Channel => matches!(
                            arena.slots[ch],
                            ChannelSlot::Delivered { .. } | ChannelSlot::Spoof { .. }
                        ),
                        ListenerOutcome::Nothing => false,
                        ListenerOutcome::Honest { .. } => true,
                        ListenerOutcome::Adversary => matches!(
                            arena.adv_idx[ch].map(|a| &adversary.transmissions[a as usize].1),
                            Some(Emission::Spoof(_))
                        ),
                    };
                    if heard {
                        self.stats.frames_received += 1;
                    } else {
                        self.stats.silent_receptions += 1;
                    }
                }
            }
        }

        // -- trace (record arena, rebuilt in place, SoA) -------------------
        if self.sink.wants_records() {
            {
                let diverges = self.model.diverges();
                let model = self.model.as_ref();
                let model_seed = self.model_seed;
                let RoundArena {
                    active,
                    tx_node,
                    tx_chan,
                    tx_src,
                    order,
                    spans,
                    listeners,
                    l_order,
                    l_spans,
                    adv_idx,
                    slots,
                    record,
                    ..
                } = &mut self.arena;
                record.round = self.round;
                record.channels = c;
                record.tx_nodes.clear();
                record.tx_channels.clear();
                record.tx_frames.clear();
                for &tx in order.iter() {
                    record.tx_nodes.push(NodeId(tx_node[tx as usize] as usize));
                    record
                        .tx_channels
                        .push(ChannelId(tx_chan[tx as usize] as usize));
                    match actions.get(tx_src[tx as usize]) {
                        // detlint: allow(deny-alloc) retention cost: frame clone into the capacity-reusing record arena; free for Copy frames (zero_alloc.rs pins it)
                        Action::Transmit { frame, .. } => record.tx_frames.push(frame.clone()),
                        _ => unreachable!("gathered transmissions come from Transmit actions"),
                    }
                }
                record.listener_nodes.clear();
                record.listener_channels.clear();
                for &(node, ch) in listeners.iter() {
                    record.listener_nodes.push(node);
                    record.listener_channels.push(ch);
                }
                record.adv_channels.clear();
                record.adv_emissions.clear();
                for (ch, emission) in &adversary.transmissions {
                    record.adv_channels.push(*ch);
                    // detlint: allow(deny-alloc) retention cost: emission clone into the capacity-reusing record arena; free for Copy frames
                    record.adv_emissions.push(emission.clone());
                }
                // Sorted worklist iteration => delivered channels ascending,
                // as the SoA invariant requires.
                record.delivered_channels.clear();
                record.delivered_frames.clear();
                for &ch in active.iter() {
                    match slots[ch as usize] {
                        ChannelSlot::Delivered { tx } => match actions.get(tx_src[tx as usize]) {
                            Action::Transmit { frame, .. } => {
                                record.delivered_channels.push(ChannelId(ch as usize));
                                // detlint: allow(deny-alloc) retention cost: delivered-frame clone into the capacity-reusing record arena
                                record.delivered_frames.push(frame.clone());
                            }
                            _ => unreachable!("delivered slot points at a Transmit action"),
                        },
                        ChannelSlot::Spoof { adv } => {
                            match &adversary.transmissions[adv as usize].1 {
                                Emission::Spoof(frame) => {
                                    record.delivered_channels.push(ChannelId(ch as usize));
                                    // detlint: allow(deny-alloc) retention cost: spoofed-frame clone into the capacity-reusing record arena
                                    record.delivered_frames.push(frame.clone());
                                }
                                Emission::Noise => unreachable!("spoof slot is a Spoof emission"),
                            }
                        }
                        _ => {}
                    }
                }
                // Per-listener receptions that diverge from the wire
                // outcome (lossy drops, geometric shadowing). Empty —
                // and absent from the encoded line — under non-diverging
                // models, so ideal traces stay byte-identical.
                record.reception_nodes.clear();
                record.reception_frames.clear();
                if diverges {
                    for &ch in active.iter() {
                        let chu = ch as usize;
                        let (l_start, l_len) = l_spans[chu];
                        if l_len == 0 {
                            continue;
                        }
                        let (start, len) = spans[chu];
                        let adv_kind =
                            adv_idx[chu].map(|a| match &adversary.transmissions[a as usize].1 {
                                Emission::Noise => EmissionKind::Noise,
                                Emission::Spoof(_) => EmissionKind::Spoof,
                            });
                        for &li in &l_order[l_start as usize..(l_start + l_len) as usize] {
                            let node = listeners[li as usize].0;
                            let ctx = ChannelContext {
                                seed: model_seed,
                                round: self.round,
                                channel: ChannelId(chu),
                                transmitters: TxSpan::new(
                                    &order[start as usize..(start + len) as usize],
                                    tx_node,
                                ),
                                adversary: adv_kind,
                            };
                            let frame = match model.listener_outcome(&ctx, node) {
                                // Agrees with the wire outcome: not recorded.
                                ListenerOutcome::Channel => continue,
                                ListenerOutcome::Nothing => None,
                                ListenerOutcome::Honest { idx } => {
                                    let tx = ctx.transmitters.tx(idx);
                                    match actions.get(tx_src[tx as usize]) {
                                        Action::Transmit { frame, .. } => {
                                            // detlint: allow(deny-alloc) retention cost: diverging-reception frame clone into the capacity-reusing record arena
                                            Some(frame.clone())
                                        }
                                        _ => unreachable!(
                                            "transmitter span points at Transmit actions"
                                        ),
                                    }
                                }
                                ListenerOutcome::Adversary => match adv_idx[chu]
                                    .map(|a| &adversary.transmissions[a as usize].1)
                                {
                                    // detlint: allow(deny-alloc) retention cost: diverging-reception spoof clone into the capacity-reusing record arena
                                    Some(Emission::Spoof(frame)) => Some(frame.clone()),
                                    _ => None,
                                },
                            };
                            record.reception_nodes.push(node);
                            record.reception_frames.push(frame);
                        }
                    }
                }
            }
            self.sink.record_mut(&mut self.arena.record);
            // Lossy sinks (bounded channel, drop policy) discard records;
            // mirror their counter so lossiness is visible in the stats.
            self.stats.dropped_records = self.sink.dropped_records();
        } else {
            self.sink.note_round();
        }

        self.round += 1;
        Ok(())
    }
    // detlint: deny-alloc(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetworkConfig {
        NetworkConfig::new(3, 2).unwrap()
    }

    fn tx(ch: usize, frame: u32) -> Action<u32> {
        Action::Transmit {
            channel: ChannelId(ch),
            frame,
        }
    }

    fn listen(ch: usize) -> Action<u32> {
        Action::Listen {
            channel: ChannelId(ch),
        }
    }

    /// Resolve one round and materialize the owned resolution (test
    /// convenience around the borrowed view).
    fn resolve(
        net: &mut Network<u32>,
        actions: &[Action<u32>],
        adversary: AdversaryAction<u32>,
    ) -> Result<RoundResolution<u32>, EngineError> {
        net.resolve_round(actions, &adversary)
            .map(|view| view.to_resolution())
    }

    fn record_transmissions(rec: &RoundRecord<u32>) -> Vec<(NodeId, ChannelId, u32)> {
        rec.transmissions().map(|(n, c, f)| (n, c, *f)).collect()
    }

    fn record_delivered(rec: &RoundRecord<u32>) -> Vec<Option<u32>> {
        rec.delivered_dense().map(|f| f.copied()).collect()
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            NetworkConfig::new(1, 0),
            Err(EngineError::TooFewChannels { channels: 1 })
        );
        assert_eq!(
            NetworkConfig::new(3, 3),
            Err(EngineError::BudgetTooLarge {
                budget: 3,
                channels: 3
            })
        );
        assert!(NetworkConfig::new(2, 1).is_ok());
        let minimal = NetworkConfig::minimal(4).unwrap();
        assert_eq!(minimal.channels(), 5);
        assert_eq!(minimal.budget(), 4);
    }

    #[test]
    fn single_transmitter_delivers() {
        let mut net: Network<u32> = Network::new(cfg());
        let res = resolve(
            &mut net,
            &[tx(0, 7), listen(0), listen(1)],
            AdversaryAction::idle(),
        )
        .unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), Some(7));
        assert_eq!(res.heard_on(ChannelId(1)), None);
        assert_eq!(net.stats().honest_deliveries, 1);
        assert_eq!(net.stats().frames_received, 1);
        assert_eq!(net.stats().silent_receptions, 1);
    }

    #[test]
    fn view_borrows_frames_without_cloning() {
        let mut net: Network<u32> = Network::new(cfg());
        let actions = [tx(0, 7), listen(0), listen(1)];
        let adv = AdversaryAction::idle();
        let view = net.resolve_round(&actions, &adv).unwrap();
        assert_eq!(view.round(), 0);
        assert_eq!(view.channels(), 3);
        // The delivered frame is literally the one in the action slice.
        assert!(std::ptr::eq(
            view.heard_on(ChannelId(0)).unwrap(),
            match &actions[0] {
                Action::Transmit { frame, .. } => frame,
                _ => unreachable!(),
            }
        ));
        assert!(matches!(
            view.outcome(ChannelId(0)),
            OutcomeView::Delivered {
                from: NodeId(0),
                frame: &7
            }
        ));
        assert_eq!(view.listeners().len(), 2);
        let delivered: Vec<Option<&u32>> = view.delivered().collect();
        assert_eq!(delivered, vec![Some(&7), None, None]);
        // The worklist holds exactly the touched channels, ascending.
        let active: Vec<ChannelId> = view.active_channels().collect();
        assert_eq!(active, vec![ChannelId(0), ChannelId(1)]);
        // Per-channel listener spans agree with the flat listener list.
        assert_eq!(
            view.listeners_on(ChannelId(0)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        assert_eq!(
            view.listeners_on(ChannelId(1)).collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
        assert_eq!(view.listeners_on(ChannelId(2)).count(), 0);
    }

    #[test]
    fn two_honest_transmitters_collide() {
        let mut net: Network<u32> = Network::new(cfg());
        let actions = [tx(0, 1), tx(0, 2), listen(0)];
        let adv = AdversaryAction::idle();
        let view = net.resolve_round(&actions, &adv).unwrap();
        assert_eq!(view.heard_on(ChannelId(0)), None);
        match view.outcome(ChannelId(0)) {
            OutcomeView::Collision { honest, adversary } => {
                assert!(!adversary);
                assert_eq!(honest.len(), 2);
                assert!(!honest.is_empty());
                let nodes: Vec<NodeId> = honest.nodes().collect();
                assert_eq!(nodes, vec![NodeId(0), NodeId(1)]);
                let frames: Vec<(NodeId, &u32)> = honest.frames().collect();
                assert_eq!(frames, vec![(NodeId(0), &1), (NodeId(1), &2)]);
            }
            other => panic!("expected collision, got {other:?}"),
        }
        let res = view.to_resolution();
        assert!(matches!(
            res.outcomes[0],
            ChannelOutcome::Collision {
                ref honest,
                adversary: false
            } if honest == &vec![NodeId(0), NodeId(1)]
        ));
        assert_eq!(net.stats().collisions, 2);
    }

    #[test]
    fn jam_collides_with_honest_frame() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(0)]);
        let res = resolve(&mut net, &[tx(0, 1), listen(0)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(net.stats().jams_effective, 1);
        assert_eq!(net.stats().collisions, 1);
    }

    #[test]
    fn spoof_on_idle_channel_delivers_fake() {
        let mut net: Network<u32> = Network::new(cfg());
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(666));
        let res = resolve(&mut net, &[listen(1)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(1)), Some(666));
        assert_eq!(net.stats().spoofs_delivered, 1);
    }

    #[test]
    fn spoof_concurrent_with_honest_collides() {
        let mut net: Network<u32> = Network::new(cfg());
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(0), Emission::Spoof(666));
        let res = resolve(&mut net, &[tx(0, 1), listen(0)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(net.stats().spoofs_delivered, 0);
        assert_eq!(net.stats().jams_effective, 1);
    }

    #[test]
    fn spoof_delivered_stats_exact_under_many_listeners() {
        // Satellite regression: the spoof-delivered stat used to scan the
        // whole listener list once per channel (O(C×L)); the listener
        // spans make it O(1). Pin the counts with a listener population
        // big enough that a double count (or a miss) is unambiguous.
        let mut net: Network<u32> = Network::new(NetworkConfig::new(4, 2).unwrap());
        let mut actions: Vec<Action<u32>> = Vec::new();
        // 100 listeners on the spoofed channel 1, 100 on the noisy
        // channel 2, 100 on the idle channel 3.
        for _ in 0..100 {
            actions.push(listen(1));
            actions.push(listen(2));
            actions.push(listen(3));
        }
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(9));
        adv.push(ChannelId(2), Emission::Noise);
        resolve(&mut net, &actions, adv).unwrap();
        // One spoofed channel with listeners => exactly one delivered spoof.
        assert_eq!(net.stats().spoofs_delivered, 1);
        assert_eq!(net.stats().frames_received, 100);
        assert_eq!(net.stats().silent_receptions, 200);

        // A spoof with *no* listeners is not counted as delivered.
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(0), Emission::Spoof(7));
        resolve(&mut net, &[listen(3)], adv).unwrap();
        assert_eq!(net.stats().spoofs_delivered, 1);
    }

    #[test]
    fn noise_on_idle_channel_sounds_like_silence() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(2)]);
        let res = resolve(&mut net, &[listen(2)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(2)), None);
        assert!(matches!(res.outcomes[2], ChannelOutcome::NoiseOnly));
    }

    #[test]
    fn budget_enforced_not_clamped() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(0), ChannelId(1), ChannelId(2)]);
        let err = resolve(&mut net, &[], adv).unwrap_err();
        assert_eq!(
            err,
            EngineError::AdversaryBudgetExceeded {
                used: 3,
                budget: 2,
                round: 0
            }
        );
    }

    #[test]
    fn duplicate_adversary_channel_rejected() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(1), ChannelId(1)]);
        let err = resolve(&mut net, &[], adv).unwrap_err();
        assert_eq!(
            err,
            EngineError::AdversaryDuplicateChannel {
                channel: ChannelId(1),
                round: 0
            }
        );
    }

    #[test]
    fn out_of_range_channels_rejected() {
        let mut net: Network<u32> = Network::new(cfg());
        let err = resolve(&mut net, &[tx(9, 0)], AdversaryAction::idle()).unwrap_err();
        assert!(matches!(err, EngineError::ChannelOutOfRange { .. }));

        let adv = AdversaryAction::jam([ChannelId(17)]);
        let err = resolve(&mut net, &[], adv).unwrap_err();
        assert!(matches!(
            err,
            EngineError::AdversaryChannelOutOfRange { .. }
        ));
    }

    #[test]
    fn retention_none_same_outcomes_and_stats_no_records() {
        let mut traced: Network<u32> = Network::new(cfg());
        let mut lean: Network<u32> = Network::new(cfg().with_retention(TraceRetention::None));
        for round in 0..20u32 {
            let actions = [
                tx(round as usize % 3, round),
                tx((round as usize + 1) % 3, round + 100),
                tx((round as usize + 1) % 3, round + 200),
                listen(round as usize % 3),
                listen((round as usize + 2) % 3),
            ];
            let adv = AdversaryAction::jam([ChannelId((round as usize + 2) % 3)]);
            let a = resolve(&mut traced, &actions, adv.clone()).unwrap();
            let b = resolve(&mut lean, &actions, adv).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(traced.stats(), lean.stats());
        assert_eq!(lean.trace().completed_rounds(), 20);
        assert!(lean.trace().is_empty());
        assert_eq!(traced.trace().len(), 20);
    }

    #[test]
    fn sparse_path_matches_dense_round_by_round() {
        // The same execution through `resolve_round` (with explicit
        // Sleeps) and `resolve_round_sparse` (sleepers omitted):
        // resolutions, stats, and retained records must be identical.
        let mut dense: Network<u32> = Network::new(cfg());
        let mut sparse: Network<u32> = Network::new(cfg());
        for round in 0..12u32 {
            let actions: Vec<Action<u32>> = (0..8)
                .map(|i| match (i + round as usize) % 4 {
                    0 => tx((i + round as usize) % 3, round * 100 + i as u32),
                    1 => listen(i % 3),
                    _ => Action::Sleep,
                })
                .collect();
            let pairs: Vec<(NodeId, Action<u32>)> = actions
                .iter()
                .enumerate()
                .filter(|(_, a)| !matches!(a, Action::Sleep))
                .map(|(i, a)| (NodeId(i), a.clone()))
                .collect();
            let adv = AdversaryAction::jam([ChannelId(round as usize % 3)]);
            let a = dense.resolve_round(&actions, &adv).unwrap().to_resolution();
            let b = sparse
                .resolve_round_sparse(&pairs, &adv)
                .unwrap()
                .to_resolution();
            assert_eq!(a, b);
        }
        assert_eq!(dense.stats(), sparse.stats());
        assert!(dense
            .trace()
            .records()
            .zip(sparse.trace().records())
            .all(|(a, b)| a == b));
        assert_eq!(dense.trace().len(), sparse.trace().len());
    }

    #[test]
    fn untouched_channels_resolve_idle_despite_stale_slots() {
        // Sparse rounds never visit untouched channels, so their arena
        // slots still hold the previous round's tags — the epoch fence
        // must hide them.
        let mut net: Network<u32> = Network::new(cfg());
        // Round 0: deliver on 0, spoof on 1, collide on 2.
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(9));
        let pairs = [
            (NodeId(0), tx(0, 5)),
            (NodeId(1), listen(1)),
            (NodeId(2), tx(2, 6)),
            (NodeId(3), tx(2, 7)),
        ];
        net.resolve_round_sparse(&pairs, &adv).unwrap();
        // Round 1: only channel 1 is touched.
        let pairs = [(NodeId(0), tx(1, 8))];
        let idle = AdversaryAction::idle();
        let view = net.resolve_round_sparse(&pairs, &idle).unwrap();
        assert!(matches!(view.outcome(ChannelId(0)), OutcomeView::Idle));
        assert_eq!(view.heard_on(ChannelId(0)), None);
        assert!(matches!(view.outcome(ChannelId(2)), OutcomeView::Idle));
        assert_eq!(view.participants(ChannelId(2)).len(), 0);
        assert_eq!(view.listeners_on(ChannelId(1)).count(), 0);
        assert_eq!(view.heard_on(ChannelId(1)), Some(&8));
        assert_eq!(
            view.active_channels().collect::<Vec<_>>(),
            vec![ChannelId(1)]
        );
        let rec = net.trace().last().unwrap();
        assert_eq!(record_delivered(rec), vec![None, Some(8), None]);
    }

    #[test]
    fn arena_state_does_not_leak_across_rounds() {
        let mut net: Network<u32> = Network::new(cfg());
        // Round 0: busy channel 0 (collision), spoof on 1.
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(9));
        resolve(&mut net, &[tx(0, 1), tx(0, 2), listen(1)], adv).unwrap();
        // Round 1: everything idle except one clean delivery on channel 2 —
        // nothing from round 0 may bleed in.
        let res = resolve(
            &mut net,
            &[tx(2, 7), listen(2), Action::Sleep],
            AdversaryAction::idle(),
        )
        .unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(res.heard_on(ChannelId(1)), None);
        assert_eq!(res.heard_on(ChannelId(2)), Some(7));
        assert!(matches!(res.outcomes[0], ChannelOutcome::Idle));
        assert!(matches!(res.outcomes[1], ChannelOutcome::Idle));
        let rec = net.trace().last().unwrap();
        assert_eq!(
            record_transmissions(rec),
            vec![(NodeId(0), ChannelId(2), 7)]
        );
        assert_eq!(
            rec.listeners().collect::<Vec<_>>(),
            vec![(NodeId(1), ChannelId(2))]
        );
    }

    #[test]
    fn arena_survives_reconfiguration_without_stale_state() {
        // The `Scratch`-reuse regression test from the issue: growing (and
        // shrinking) the channel count mid-suite must not leave stale
        // spans, listener entries, or outcome slots in the arena.
        let mut net: Network<u32> = Network::new(cfg()); // C = 3
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(2), Emission::Spoof(9));
        // Busy round: collisions on 0, spoof on 2, listeners everywhere.
        resolve(
            &mut net,
            &[tx(0, 1), tx(0, 2), listen(1), listen(2)],
            adv.clone(),
        )
        .unwrap();

        // Grow to 5 channels (and more nodes than before).
        net.reconfigure(NetworkConfig::new(5, 2).unwrap());
        let actions: Vec<Action<u32>> = vec![
            tx(4, 40),
            listen(4),
            listen(3),
            Action::Sleep,
            tx(0, 10),
            tx(0, 11),
            listen(0),
        ];
        let res = resolve(&mut net, &actions, AdversaryAction::idle()).unwrap();
        assert_eq!(res.outcomes.len(), 5);
        assert_eq!(res.heard_on(ChannelId(4)), Some(40));
        assert_eq!(res.heard_on(ChannelId(3)), None);
        assert!(matches!(res.outcomes[3], ChannelOutcome::Idle));
        assert!(matches!(res.outcomes[1], ChannelOutcome::Idle));
        assert!(matches!(res.outcomes[2], ChannelOutcome::Idle));
        assert!(matches!(
            res.outcomes[0],
            ChannelOutcome::Collision {
                ref honest,
                adversary: false
            } if honest == &vec![NodeId(4), NodeId(5)]
        ));
        let rec = net.trace().last().unwrap().clone();
        assert_eq!(rec.channels, 5);
        assert_eq!(
            record_delivered(&rec),
            vec![None, None, None, None, Some(40)]
        );
        assert_eq!(
            rec.listeners().collect::<Vec<_>>(),
            vec![
                (NodeId(1), ChannelId(4)),
                (NodeId(2), ChannelId(3)),
                (NodeId(6), ChannelId(0))
            ]
        );

        // Shrink back to 2 channels: channel ids 2..5 must be gone.
        net.reconfigure(NetworkConfig::new(2, 1).unwrap());
        let res = resolve(&mut net, &[listen(1), tx(1, 5)], AdversaryAction::idle()).unwrap();
        assert_eq!(res.outcomes.len(), 2);
        assert_eq!(res.heard_on(ChannelId(1)), Some(5));
        assert!(matches!(res.outcomes[0], ChannelOutcome::Idle));
        let rec = net.trace().last().unwrap();
        assert_eq!(record_delivered(rec), vec![None, Some(5)]);
        assert_eq!(
            rec.listeners().collect::<Vec<_>>(),
            vec![(NodeId(0), ChannelId(1))]
        );

        // Round numbering and stats carried across both reconfigurations.
        assert_eq!(net.round(), 3);
        assert_eq!(net.stats().rounds, 3);
        assert_eq!(net.trace().completed_rounds(), 3);

        // And the whole run matches a fresh network driven through the
        // same final configuration (no hidden arena state).
        let mut fresh: Network<u32> = Network::new(NetworkConfig::new(2, 1).unwrap());
        let fresh_res =
            resolve(&mut fresh, &[listen(1), tx(1, 5)], AdversaryAction::idle()).unwrap();
        assert_eq!(fresh_res.outcomes, res.outcomes);
    }

    #[test]
    fn trace_records_round() {
        let mut net: Network<u32> = Network::new(cfg());
        resolve(&mut net, &[tx(0, 5), listen(0)], AdversaryAction::idle()).unwrap();
        let rec = net.trace().last().unwrap();
        assert_eq!(
            record_transmissions(rec),
            vec![(NodeId(0), ChannelId(0), 5)]
        );
        assert_eq!(
            rec.listeners().collect::<Vec<_>>(),
            vec![(NodeId(1), ChannelId(0))]
        );
        assert_eq!(record_delivered(rec), vec![Some(5), None, None]);
    }
}
