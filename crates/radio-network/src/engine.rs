//! The round-resolution engine: pure channel semantics of the model.

use crate::adversary::{AdversaryAction, Emission};
use crate::error::EngineError;
use crate::node::{Action, ChannelId, NodeId};
use crate::sink::{InMemorySink, NullSink, TraceSink};
use crate::stats::Stats;
use crate::trace::{RoundRecord, Trace, TraceRetention};

/// Static configuration of the radio network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NetworkConfig {
    channels: usize,
    budget: usize,
    retention: TraceRetention,
}

impl NetworkConfig {
    /// A network with `channels` channels and an adversary able to disrupt
    /// up to `budget` (= `t`) of them per round.
    ///
    /// # Errors
    ///
    /// * [`EngineError::TooFewChannels`] if `channels < 2` (the model
    ///   requires `C > 1`).
    /// * [`EngineError::BudgetTooLarge`] if `budget >= channels` (the model
    ///   requires `t < C`; with `t >= C` no communication is possible).
    pub fn new(channels: usize, budget: usize) -> Result<Self, EngineError> {
        if channels < 2 {
            return Err(EngineError::TooFewChannels { channels });
        }
        if budget >= channels {
            return Err(EngineError::BudgetTooLarge { budget, channels });
        }
        Ok(NetworkConfig {
            channels,
            budget,
            retention: TraceRetention::default(),
        })
    }

    /// The minimal interesting configuration of the paper: `C = t + 1`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkConfig::new`].
    pub fn minimal(t: usize) -> Result<Self, EngineError> {
        NetworkConfig::new(t + 1, t)
    }

    /// Replace the trace-retention policy (default: keep everything).
    #[must_use]
    pub fn with_retention(mut self, retention: TraceRetention) -> Self {
        self.retention = retention;
        self
    }

    /// Number of channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Adversary budget `t`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Trace-retention policy.
    pub fn retention(&self) -> TraceRetention {
        self.retention
    }
}

/// How a single channel resolved in one round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChannelOutcome<M> {
    /// Nobody (honest or adversarial) transmitted.
    Idle,
    /// Exactly one honest transmitter: its frame was delivered.
    Delivered {
        /// The transmitting node.
        from: NodeId,
        /// The delivered frame.
        frame: M,
    },
    /// The adversary spoofed an otherwise idle channel: forged frame delivered.
    SpoofDelivered {
        /// The forged frame.
        frame: M,
    },
    /// Two or more transmitters (any mix of honest/adversarial): all lost.
    Collision {
        /// Honest transmitters involved.
        honest: Vec<NodeId>,
        /// `true` if the adversary contributed to the collision.
        adversary: bool,
    },
    /// The adversary emitted pure noise on an otherwise idle channel
    /// (indistinguishable from silence for listeners).
    NoiseOnly,
}

impl<M: Clone> ChannelOutcome<M> {
    /// The frame listeners on this channel receive (`None` = silence/collision).
    pub fn heard(&self) -> Option<M> {
        match self {
            ChannelOutcome::Delivered { frame, .. } | ChannelOutcome::SpoofDelivered { frame } => {
                Some(frame.clone())
            }
            _ => None,
        }
    }
}

/// The full resolution of one round: per-channel outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundResolution<M> {
    /// Round number resolved.
    pub round: u64,
    /// Outcome per channel, indexed by channel id.
    pub outcomes: Vec<ChannelOutcome<M>>,
}

impl<M: Clone> RoundResolution<M> {
    /// What a listener tuned to `channel` hears.
    pub fn heard_on(&self, channel: ChannelId) -> Option<M> {
        self.outcomes[channel.index()].heard()
    }
}

/// The radio medium: resolves rounds, hands each finished round to a
/// [`TraceSink`], and accumulates [`Stats`].
///
/// `Network` is deliberately free of nodes and adversaries — it is a pure
/// referee. Use [`Simulation`](crate::Simulation) to drive full protocol
/// stacks, or call [`Network::resolve_round`] directly in unit tests.
#[derive(Debug)]
pub struct Network<M> {
    cfg: NetworkConfig,
    round: u64,
    sink: Box<dyn TraceSink<M>>,
    stats: Stats,
    scratch: Scratch<M>,
}

/// Per-round working buffers, reused across rounds so that steady-state
/// round resolution allocates nothing beyond what the returned
/// [`RoundResolution`] and the retained trace records themselves need.
#[derive(Debug)]
struct Scratch<M> {
    /// Honest transmissions gathered per channel (index = channel).
    honest_tx: Vec<Vec<(NodeId, M)>>,
    /// Honest listeners this round.
    listeners: Vec<(NodeId, ChannelId)>,
    /// Per channel, the index into the adversary's transmission list
    /// (doubles as the duplicate-channel check).
    adv_idx: Vec<Option<usize>>,
}

impl<M> Scratch<M> {
    fn new(channels: usize) -> Self {
        Scratch {
            honest_tx: (0..channels).map(|_| Vec::new()).collect(),
            listeners: Vec::new(),
            adv_idx: vec![None; channels],
        }
    }

    fn reset(&mut self) {
        for txs in &mut self.honest_tx {
            txs.clear();
        }
        self.listeners.clear();
        for slot in &mut self.adv_idx {
            *slot = None;
        }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> Network<M> {
    /// A fresh network at round 0, observing rounds with the default
    /// in-memory sink: [`NullSink`] under [`TraceRetention::None`],
    /// [`InMemorySink`] with the config's retention otherwise.
    pub fn new(cfg: NetworkConfig) -> Self {
        let sink: Box<dyn TraceSink<M>> = match cfg.retention() {
            TraceRetention::None => Box::new(NullSink::new()),
            retention => Box::new(InMemorySink::new(retention)),
        };
        Network::with_sink(cfg, sink)
    }

    /// A fresh network handing every finished round to `sink` instead of
    /// the default in-memory trace. The config's
    /// [`retention`](NetworkConfig::retention) is ignored — the sink
    /// alone decides what is stored (and whether records are built at
    /// all, via [`TraceSink::wants_records`]).
    pub fn with_sink(cfg: NetworkConfig, sink: Box<dyn TraceSink<M>>) -> Self {
        Network {
            cfg,
            round: 0,
            sink,
            stats: Stats::default(),
            scratch: Scratch::new(cfg.channels()),
        }
    }

    /// The configuration this network runs with.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The next round to be resolved.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The execution history retained by the sink (empty — but with an
    /// exact completed-round count — for streaming/null sinks).
    pub fn trace(&self) -> &Trace<M> {
        self.sink.history()
    }

    /// The sink observing this network's rounds.
    pub fn sink(&self) -> &dyn TraceSink<M> {
        self.sink.as_ref()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resolve one round given every honest action and the adversary's move.
    ///
    /// `actions[i]` is the action of node `i`. Returns per-channel outcomes;
    /// the caller distributes receptions to listeners (or uses
    /// [`Simulation`](crate::Simulation) which does so automatically).
    ///
    /// # Errors
    ///
    /// * [`EngineError::ChannelOutOfRange`] /
    ///   [`EngineError::AdversaryChannelOutOfRange`] on bad channels;
    /// * [`EngineError::AdversaryBudgetExceeded`] if the adversary used more
    ///   than `t` channels;
    /// * [`EngineError::AdversaryDuplicateChannel`] if it listed one channel
    ///   twice.
    pub fn resolve_round(
        &mut self,
        actions: &[Action<M>],
        adversary: AdversaryAction<M>,
    ) -> Result<RoundResolution<M>, EngineError> {
        let c = self.cfg.channels();
        // -- validate ---------------------------------------------------
        for (i, action) in actions.iter().enumerate() {
            if let Some(ch) = action.channel() {
                if ch.index() >= c {
                    return Err(EngineError::ChannelOutOfRange {
                        node: NodeId(i),
                        channel: ch,
                        channels: c,
                    });
                }
            }
        }
        if adversary.len() > self.cfg.budget() {
            return Err(EngineError::AdversaryBudgetExceeded {
                used: adversary.len(),
                budget: self.cfg.budget(),
                round: self.round,
            });
        }
        self.scratch.reset();
        for (i, (ch, _)) in adversary.transmissions.iter().enumerate() {
            if ch.index() >= c {
                return Err(EngineError::AdversaryChannelOutOfRange {
                    channel: *ch,
                    channels: c,
                });
            }
            if self.scratch.adv_idx[ch.index()].is_some() {
                return Err(EngineError::AdversaryDuplicateChannel {
                    channel: *ch,
                    round: self.round,
                });
            }
            self.scratch.adv_idx[ch.index()] = Some(i);
        }

        // -- gather per channel (into reused scratch buffers) --------------
        for (i, action) in actions.iter().enumerate() {
            match action {
                Action::Transmit { channel, frame } => {
                    self.scratch.honest_tx[channel.index()].push((NodeId(i), frame.clone()));
                }
                Action::Listen { channel } => self.scratch.listeners.push((NodeId(i), *channel)),
                Action::Sleep => {}
            }
        }

        // -- resolve -------------------------------------------------------
        // When the sink wants no records, delivered frames can be *moved*
        // out of the scratch buffer instead of cloned — nothing else needs
        // them.
        let keeps_records = self.sink.wants_records();
        let mut outcomes: Vec<ChannelOutcome<M>> = Vec::with_capacity(c);
        for ch in 0..c {
            let honest = &mut self.scratch.honest_tx[ch];
            let adv = self.scratch.adv_idx[ch].map(|i| &adversary.transmissions[i].1);
            let outcome = match (honest.len(), adv) {
                (0, None) => ChannelOutcome::Idle,
                (0, Some(Emission::Noise)) => ChannelOutcome::NoiseOnly,
                (0, Some(Emission::Spoof(frame))) => ChannelOutcome::SpoofDelivered {
                    frame: frame.clone(),
                },
                (1, None) => {
                    if keeps_records {
                        let (from, frame) = &honest[0];
                        ChannelOutcome::Delivered {
                            from: *from,
                            frame: frame.clone(),
                        }
                    } else {
                        let (from, frame) = honest.pop().expect("exactly one transmitter");
                        ChannelOutcome::Delivered { from, frame }
                    }
                }
                // one honest + adversary, or >=2 honest: collision.
                _ => ChannelOutcome::Collision {
                    honest: honest.iter().map(|&(id, _)| id).collect(),
                    adversary: adv.is_some(),
                },
            };
            outcomes.push(outcome);
        }

        // -- stats ---------------------------------------------------------
        self.stats.rounds += 1;
        self.stats.adversary_transmissions += adversary.len() as u64;
        for (ch, outcome) in outcomes.iter().enumerate() {
            match outcome {
                ChannelOutcome::Delivered { .. } => {
                    self.stats.honest_transmissions += 1;
                    self.stats.honest_deliveries += 1;
                }
                ChannelOutcome::SpoofDelivered { .. } => {
                    if self.scratch.listeners.iter().any(|&(_, l)| l.index() == ch) {
                        self.stats.spoofs_delivered += 1;
                    }
                }
                ChannelOutcome::Collision { honest, adversary } => {
                    self.stats.honest_transmissions += honest.len() as u64;
                    self.stats.collisions += honest.len() as u64;
                    // A popped delivered frame never lands here: scratch
                    // buffers with >=2 entries are left intact above.
                    if *adversary {
                        self.stats.jams_effective += 1;
                    }
                }
                ChannelOutcome::Idle | ChannelOutcome::NoiseOnly => {}
            }
        }
        for &(_, ch) in &self.scratch.listeners {
            match outcomes[ch.index()].heard() {
                Some(_) => self.stats.frames_received += 1,
                None => self.stats.silent_receptions += 1,
            }
        }

        // -- trace -----------------------------------------------------------
        if keeps_records {
            let delivered: Vec<Option<M>> = outcomes.iter().map(ChannelOutcome::heard).collect();
            let tx_total: usize = self.scratch.honest_tx.iter().map(Vec::len).sum();
            let mut transmissions = Vec::with_capacity(tx_total);
            for (ch, txs) in self.scratch.honest_tx.iter_mut().enumerate() {
                for (id, frame) in txs.drain(..) {
                    transmissions.push((id, ChannelId(ch), frame));
                }
            }
            self.sink.record(RoundRecord {
                round: self.round,
                transmissions,
                listeners: std::mem::take(&mut self.scratch.listeners),
                adversary: adversary.transmissions,
                delivered,
            });
            // Lossy sinks (bounded channel, drop policy) discard records;
            // mirror their counter so lossiness is visible in the stats.
            self.stats.dropped_records = self.sink.dropped_records();
        } else {
            self.sink.note_round();
        }

        let resolution = RoundResolution {
            round: self.round,
            outcomes,
        };
        self.round += 1;
        Ok(resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetworkConfig {
        NetworkConfig::new(3, 2).unwrap()
    }

    fn tx(ch: usize, frame: u32) -> Action<u32> {
        Action::Transmit {
            channel: ChannelId(ch),
            frame,
        }
    }

    fn listen(ch: usize) -> Action<u32> {
        Action::Listen {
            channel: ChannelId(ch),
        }
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            NetworkConfig::new(1, 0),
            Err(EngineError::TooFewChannels { channels: 1 })
        );
        assert_eq!(
            NetworkConfig::new(3, 3),
            Err(EngineError::BudgetTooLarge {
                budget: 3,
                channels: 3
            })
        );
        assert!(NetworkConfig::new(2, 1).is_ok());
        let minimal = NetworkConfig::minimal(4).unwrap();
        assert_eq!(minimal.channels(), 5);
        assert_eq!(minimal.budget(), 4);
    }

    #[test]
    fn single_transmitter_delivers() {
        let mut net: Network<u32> = Network::new(cfg());
        let res = net
            .resolve_round(&[tx(0, 7), listen(0), listen(1)], AdversaryAction::idle())
            .unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), Some(7));
        assert_eq!(res.heard_on(ChannelId(1)), None);
        assert_eq!(net.stats().honest_deliveries, 1);
        assert_eq!(net.stats().frames_received, 1);
        assert_eq!(net.stats().silent_receptions, 1);
    }

    #[test]
    fn two_honest_transmitters_collide() {
        let mut net: Network<u32> = Network::new(cfg());
        let res = net
            .resolve_round(&[tx(0, 1), tx(0, 2), listen(0)], AdversaryAction::idle())
            .unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert!(matches!(
            res.outcomes[0],
            ChannelOutcome::Collision {
                ref honest,
                adversary: false
            } if honest.len() == 2
        ));
        assert_eq!(net.stats().collisions, 2);
    }

    #[test]
    fn jam_collides_with_honest_frame() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(0)]);
        let res = net.resolve_round(&[tx(0, 1), listen(0)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(net.stats().jams_effective, 1);
        assert_eq!(net.stats().collisions, 1);
    }

    #[test]
    fn spoof_on_idle_channel_delivers_fake() {
        let mut net: Network<u32> = Network::new(cfg());
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(666));
        let res = net.resolve_round(&[listen(1)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(1)), Some(666));
        assert_eq!(net.stats().spoofs_delivered, 1);
    }

    #[test]
    fn spoof_concurrent_with_honest_collides() {
        let mut net: Network<u32> = Network::new(cfg());
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(0), Emission::Spoof(666));
        let res = net.resolve_round(&[tx(0, 1), listen(0)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(net.stats().spoofs_delivered, 0);
        assert_eq!(net.stats().jams_effective, 1);
    }

    #[test]
    fn noise_on_idle_channel_sounds_like_silence() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(2)]);
        let res = net.resolve_round(&[listen(2)], adv).unwrap();
        assert_eq!(res.heard_on(ChannelId(2)), None);
        assert!(matches!(res.outcomes[2], ChannelOutcome::NoiseOnly));
    }

    #[test]
    fn budget_enforced_not_clamped() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(0), ChannelId(1), ChannelId(2)]);
        let err = net.resolve_round(&[], adv).unwrap_err();
        assert_eq!(
            err,
            EngineError::AdversaryBudgetExceeded {
                used: 3,
                budget: 2,
                round: 0
            }
        );
    }

    #[test]
    fn duplicate_adversary_channel_rejected() {
        let mut net: Network<u32> = Network::new(cfg());
        let adv = AdversaryAction::jam([ChannelId(1), ChannelId(1)]);
        let err = net.resolve_round(&[], adv).unwrap_err();
        assert_eq!(
            err,
            EngineError::AdversaryDuplicateChannel {
                channel: ChannelId(1),
                round: 0
            }
        );
    }

    #[test]
    fn out_of_range_channels_rejected() {
        let mut net: Network<u32> = Network::new(cfg());
        let err = net
            .resolve_round(&[tx(9, 0)], AdversaryAction::idle())
            .unwrap_err();
        assert!(matches!(err, EngineError::ChannelOutOfRange { .. }));

        let adv = AdversaryAction::jam([ChannelId(17)]);
        let err = net.resolve_round(&[], adv).unwrap_err();
        assert!(matches!(
            err,
            EngineError::AdversaryChannelOutOfRange { .. }
        ));
    }

    #[test]
    fn retention_none_same_outcomes_and_stats_no_records() {
        let mut traced: Network<u32> = Network::new(cfg());
        let mut lean: Network<u32> = Network::new(cfg().with_retention(TraceRetention::None));
        for round in 0..20u32 {
            let actions = [
                tx(round as usize % 3, round),
                tx((round as usize + 1) % 3, round + 100),
                tx((round as usize + 1) % 3, round + 200),
                listen(round as usize % 3),
                listen((round as usize + 2) % 3),
            ];
            let adv = AdversaryAction::jam([ChannelId((round as usize + 2) % 3)]);
            let a = traced.resolve_round(&actions, adv.clone()).unwrap();
            let b = lean.resolve_round(&actions, adv).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(traced.stats(), lean.stats());
        assert_eq!(lean.trace().completed_rounds(), 20);
        assert!(lean.trace().is_empty());
        assert_eq!(traced.trace().len(), 20);
    }

    #[test]
    fn scratch_state_does_not_leak_across_rounds() {
        let mut net: Network<u32> = Network::new(cfg());
        // Round 0: busy channel 0 (collision), spoof on 1.
        let mut adv = AdversaryAction::idle();
        adv.push(ChannelId(1), Emission::Spoof(9));
        net.resolve_round(&[tx(0, 1), tx(0, 2), listen(1)], adv)
            .unwrap();
        // Round 1: everything idle except one clean delivery on channel 2 —
        // nothing from round 0 may bleed in.
        let res = net
            .resolve_round(
                &[tx(2, 7), listen(2), Action::Sleep],
                AdversaryAction::idle(),
            )
            .unwrap();
        assert_eq!(res.heard_on(ChannelId(0)), None);
        assert_eq!(res.heard_on(ChannelId(1)), None);
        assert_eq!(res.heard_on(ChannelId(2)), Some(7));
        assert!(matches!(res.outcomes[0], ChannelOutcome::Idle));
        assert!(matches!(res.outcomes[1], ChannelOutcome::Idle));
        let rec = net.trace().last().unwrap();
        assert_eq!(rec.transmissions, vec![(NodeId(0), ChannelId(2), 7)]);
        assert_eq!(rec.listeners, vec![(NodeId(1), ChannelId(2))]);
    }

    #[test]
    fn trace_records_round() {
        let mut net: Network<u32> = Network::new(cfg());
        net.resolve_round(&[tx(0, 5), listen(0)], AdversaryAction::idle())
            .unwrap();
        let rec = net.trace().last().unwrap();
        assert_eq!(rec.transmissions, vec![(NodeId(0), ChannelId(0), 5)]);
        assert_eq!(rec.listeners, vec![(NodeId(1), ChannelId(0))]);
        assert_eq!(rec.delivered, vec![Some(5), None, None]);
    }
}
