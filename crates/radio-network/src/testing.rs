//! Small fixture protocols for tests, benches, and doc examples.
//!
//! These are *not* part of the paper — they exist so the engine can be
//! exercised and demonstrated without pulling in the full `fame` stack.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::node::{Action, ChannelId, Protocol, Reception};

/// A toy node: each round flips a coin, then transmits its id on a random
/// channel or listens on a random channel; stops after a fixed number of
/// rounds. Records everything it heard.
#[derive(Clone, Debug)]
pub struct BeaconNode {
    id: usize,
    channels: usize,
    remaining: u32,
    rng: SmallRng,
    heard: Vec<(u64, u64)>,
}

impl BeaconNode {
    /// A beacon node with identity `id` on a `channels`-channel network,
    /// running for `rounds` rounds.
    pub fn new(id: usize, channels: usize, rounds: u32) -> Self {
        BeaconNode {
            id,
            channels,
            remaining: rounds,
            rng: SmallRng::seed_from_u64(0xBEAC_0000 ^ id as u64),
            heard: Vec::new(),
        }
    }

    /// `(round, frame)` pairs this node received.
    pub fn heard(&self) -> &[(u64, u64)] {
        &self.heard
    }
}

impl Protocol for BeaconNode {
    type Msg = u64;

    fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    fn begin_round(&mut self, _round: u64) -> Action<u64> {
        if self.remaining == 0 {
            return Action::Sleep;
        }
        let channel = ChannelId(self.rng.gen_range(0..self.channels));
        if self.rng.gen_bool(0.5) {
            Action::Transmit {
                channel,
                frame: self.id as u64,
            }
        } else {
            Action::Listen { channel }
        }
    }

    fn end_round(&mut self, round: u64, reception: Option<Reception<&u64>>) {
        if self.remaining > 0 {
            self.remaining -= 1;
        }
        if let Some(Reception {
            frame: Some(frame), ..
        }) = reception
        {
            self.heard.push((round, *frame));
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries::NoAdversary;
    use crate::engine::NetworkConfig;
    use crate::simulation::Simulation;

    #[test]
    fn simulation_seed_drives_beacon_randomness() {
        let run = |seed| {
            let cfg = NetworkConfig::new(2, 1).unwrap();
            let nodes: Vec<BeaconNode> = (0..4).map(|i| BeaconNode::new(i, 2, 50)).collect();
            let mut sim = Simulation::new(cfg, nodes, NoAdversary, seed).unwrap();
            sim.run(100).unwrap();
            sim.nodes()
                .iter()
                .map(|n| n.heard().to_vec())
                .collect::<Vec<_>>()
        };
        // The nodes were constructed identically — only the simulation seed
        // differs, so any difference proves the reseed wiring works.
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn beacons_hear_each_other_without_adversary() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes: Vec<BeaconNode> = (0..6).map(|i| BeaconNode::new(i, 2, 200)).collect();
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let report = sim.run(300).unwrap();
        assert_eq!(report.rounds, 200);
        let total_heard: usize = sim.nodes().iter().map(|n| n.heard().len()).sum();
        assert!(total_heard > 0, "some frame should get through");
    }
}
