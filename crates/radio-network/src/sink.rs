//! Pluggable destinations for finished [`RoundRecord`]s.
//!
//! The engine used to push every record onto an in-memory `Vec`; under
//! [`TraceRetention::All`] that retention dominated both the time and the
//! memory of [`Network::resolve_round`](crate::Network::resolve_round) on
//! long runs. A [`TraceSink`] decouples *observing* the network from
//! *storing* the observation:
//!
//! * [`InMemorySink`] — the classic behavior: retain records in a
//!   [`Trace`] per [`TraceRetention`] (what
//!   [`Network::new`](crate::Network::new) installs by default);
//! * [`NullSink`] — retain nothing, count rounds (the retention-off fast
//!   path: the engine skips building records entirely);
//! * [`ChannelSink`] — stream records through a bounded channel to a
//!   background writer thread that emits one line of JSON per round (the
//!   format specified in `docs/TRACE_FORMAT.md`), so serialization and
//!   I/O never run on the round loop. On a full queue it either blocks
//!   (lossless backpressure) or drops the newest record and counts it
//!   ([`OverflowPolicy`]); the drop counter surfaces as
//!   [`Stats::dropped_records`](crate::Stats::dropped_records).
//!
//! Sinks are installed with
//! [`Network::with_sink`](crate::Network::with_sink) or
//! [`Simulation::with_sink`](crate::Simulation::with_sink).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{self, SyncSender};
use std::thread::{self, JoinHandle};

use crate::adversary::Emission;
use crate::trace::{RoundRecord, Trace, TraceRetention};

/// A destination for finished [`RoundRecord`]s.
///
/// [`Network::resolve_round`](crate::Network::resolve_round) hands each
/// completed round to exactly one sink: the full record when
/// [`TraceSink::wants_records`] is `true`, a bare
/// [`TraceSink::note_round`] tick otherwise (in which case the engine
/// never builds the record at all — the allocation-free fast path).
///
/// Every sink also exposes a [`Trace`] *history* so the adversary (which,
/// per the model, learns all completed rounds) and post-run inspection
/// keep working: [`InMemorySink`] retains records there, streaming/null
/// sinks report an empty history with an exact completed-round count —
/// the same contract as [`TraceRetention::None`] today.
///
/// # Example
///
/// Stream a short run to a line-delimited JSON trace and keep behavior
/// otherwise identical to the in-memory default:
///
/// ```rust
/// use radio_network::{
///     ChannelSink, NetworkConfig, OverflowPolicy, Simulation, TraceRetention,
/// };
/// use radio_network::adversaries::RandomJammer;
/// use radio_network::testing::BeaconNode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let path = std::env::temp_dir().join("trace-sink-doctest.jsonl");
/// let cfg = NetworkConfig::new(3, 1)?;
/// let nodes: Vec<BeaconNode> = (0..4).map(|i| BeaconNode::new(i, 3, 5)).collect();
/// let sink = ChannelSink::create(&path, 64, OverflowPolicy::Block)?
///     .with_history(TraceRetention::All);
/// let mut sim = Simulation::with_sink(cfg, nodes, RandomJammer::new(7), 9, Box::new(sink))?;
/// let report = sim.run(100)?;
/// assert_eq!(report.stats.dropped_records, 0);
/// drop(sim); // closes the channel; the writer thread flushes and exits
/// let lines = std::fs::read_to_string(&path)?;
/// assert_eq!(lines.lines().count() as u64, report.rounds);
/// # std::fs::remove_file(&path).ok();
/// # Ok(())
/// # }
/// ```
pub trait TraceSink<M>: fmt::Debug + Send {
    /// `true` if this sink wants full [`RoundRecord`]s. When `false` the
    /// engine skips record construction and calls
    /// [`TraceSink::note_round`] instead.
    fn wants_records(&self) -> bool {
        true
    }

    /// Accept the finished record of one round, by reference: the engine
    /// builds it in a record arena reused across rounds, so a sink copies
    /// only what it retains or streams ([`Trace::push_ref`] recycles
    /// bounded-window storage; [`ChannelSink`] clones once to hand the
    /// record to its writer thread). Records arrive in round order,
    /// exactly one per resolved round.
    fn record(&mut self, record: &RoundRecord<M>);

    /// Accept the finished record with permission to **swap**: `record`
    /// is the engine's record arena, rebuilt from scratch next round, so
    /// a sink retaining a bounded window may take the buffers wholesale
    /// and hand equally warm evicted buffers back
    /// ([`Trace::push_swap`]) — retaining a round then costs no element
    /// copies at all. The default forwards to [`TraceSink::record`];
    /// implementations overriding this must leave `record` holding *some*
    /// valid buffers (contents are free to differ).
    fn record_mut(&mut self, record: &mut RoundRecord<M>) {
        self.record(record);
    }

    /// Count a completed round for which no record was built (only called
    /// while [`TraceSink::wants_records`] is `false`).
    fn note_round(&mut self);

    /// The retained in-memory history. Sinks that keep nothing return an
    /// empty trace whose completed-round count is still exact.
    fn history(&self) -> &Trace<M>;

    /// Records this sink has discarded so far (lossy sinks only; the
    /// engine mirrors this into [`Stats`](crate::Stats) every round).
    fn dropped_records(&self) -> u64 {
        0
    }
}

/// The classic in-memory sink: retains records in a [`Trace`] according
/// to a [`TraceRetention`] policy.
///
/// [`Network::new`](crate::Network::new) installs this sink (with the
/// config's retention), so existing behavior is unchanged: adversaries
/// mine the retained history, tests read it back, and
/// [`TraceRetention::None`] keeps the record-free fast path.
#[derive(Clone, Debug)]
pub struct InMemorySink<M> {
    trace: Trace<M>,
}

impl<M> InMemorySink<M> {
    /// A sink retaining records per `retention`.
    pub fn new(retention: TraceRetention) -> Self {
        InMemorySink {
            trace: Trace::new(retention),
        }
    }
}

impl<M> Default for InMemorySink<M> {
    fn default() -> Self {
        InMemorySink::new(TraceRetention::default())
    }
}

impl<M: Clone + fmt::Debug + Send> TraceSink<M> for InMemorySink<M> {
    fn wants_records(&self) -> bool {
        self.trace.retention().keeps_records()
    }

    fn record(&mut self, record: &RoundRecord<M>) {
        self.trace.push_ref(record);
    }

    // detlint: deny-alloc(start) in-memory sink steady-state paths
    fn record_mut(&mut self, record: &mut RoundRecord<M>) {
        self.trace.push_swap(record);
    }

    fn note_round(&mut self) {
        self.trace.note_round();
    }
    // detlint: deny-alloc(end)

    fn history(&self) -> &Trace<M> {
        &self.trace
    }
}

/// A sink that retains nothing: rounds are counted, records are never
/// built. The fastest possible observer — use it for multi-trial sweeps
/// where aggregate [`Stats`](crate::Stats) are the only product.
#[derive(Clone, Debug)]
pub struct NullSink<M> {
    trace: Trace<M>,
}

impl<M> NullSink<M> {
    /// A fresh null sink.
    pub fn new() -> Self {
        NullSink {
            trace: Trace::new(TraceRetention::None),
        }
    }
}

impl<M> Default for NullSink<M> {
    fn default() -> Self {
        NullSink::new()
    }
}

// detlint: deny-alloc(start) null sink (the record-free floor)
impl<M: fmt::Debug + Send> TraceSink<M> for NullSink<M> {
    fn wants_records(&self) -> bool {
        false
    }

    fn record(&mut self, _record: &RoundRecord<M>) {
        // Only reachable through direct calls; count it like a tick.
        self.trace.note_round();
    }

    fn note_round(&mut self) {
        self.trace.note_round();
    }

    fn history(&self) -> &Trace<M> {
        &self.trace
    }
}
// detlint: deny-alloc(end)

/// What [`ChannelSink`] does when the bounded queue to the writer thread
/// is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverflowPolicy {
    /// Block the round loop until the writer catches up. Lossless: every
    /// record reaches the file, at the price of round-loop stalls when
    /// the writer is slower than the engine.
    #[default]
    Block,
    /// Drop the newest record and increment the drop counter. The round
    /// loop never stalls; the trace file has gaps, visible as
    /// [`Stats::dropped_records`](crate::Stats::dropped_records) (and in
    /// `BENCH_*.json` rows).
    DropNewest,
}

/// Push `msg` into a bounded queue honoring `policy`, returning `true`
/// if it was enqueued and `false` if it was lost (a full queue under
/// [`OverflowPolicy::DropNewest`], or a disconnected receiver under
/// either policy — a vanished consumer can never absorb the message, so
/// even [`OverflowPolicy::Block`] reports it as lost rather than stall
/// forever).
///
/// This is the one backpressure primitive shared by every bounded
/// producer/consumer pair in the workspace: [`ChannelSink`] uses it to
/// feed its writer thread, and the session gateway uses it for its
/// ingress/egress queues, so "lossless" and "counted drops" mean exactly
/// the same thing everywhere a queue can fill.
pub fn send_bounded<T>(tx: &SyncSender<T>, msg: T, policy: OverflowPolicy) -> bool {
    match policy {
        OverflowPolicy::Block => tx.send(msg).is_ok(),
        OverflowPolicy::DropNewest => tx.try_send(msg).is_ok(),
    }
}

/// Summary returned by [`ChannelSink::finish`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SinkReport {
    /// Records the writer thread wrote to the output.
    pub written: u64,
    /// Records dropped on the sending side (full queue under
    /// [`OverflowPolicy::DropNewest`], or a dead writer).
    pub dropped: u64,
}

/// What flows over a [`ChannelSink`]'s queue to the writer thread:
/// round records, or the one optional header line written before them.
enum SinkMsg<M> {
    /// A raw line written verbatim (the trace header; see
    /// `docs/TRACE_FORMAT.md`). Not counted as a written record.
    Header(String),
    /// One round's record, encoded by the writer thread. Boxed so a
    /// queued record costs the channel slot one pointer, not the whole
    /// struct-of-arrays header block.
    Record(Box<RoundRecord<M>>),
}

/// Streams records through a bounded channel to a background writer
/// thread emitting one line of JSON per round (see
/// `docs/TRACE_FORMAT.md`).
///
/// The round loop pays only for the channel send — serialization and I/O
/// happen on the writer thread. Closing the sink (drop or
/// [`ChannelSink::finish`]) closes the channel, joins the writer, and
/// flushes the output, so a dropped sink never loses buffered lines.
///
/// By default the sink keeps no in-memory history (adversaries that mine
/// the trace see an empty one); [`ChannelSink::with_history`] additionally
/// retains records like an [`InMemorySink`] — use it when the attacker or
/// the caller must observe the same history the in-memory default would
/// have kept.
pub struct ChannelSink<M> {
    tx: Option<SyncSender<SinkMsg<M>>>,
    writer: Option<JoinHandle<io::Result<u64>>>,
    policy: OverflowPolicy,
    dropped: u64,
    history: Trace<M>,
}

impl<M> fmt::Debug for ChannelSink<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSink")
            .field("policy", &self.policy)
            .field("dropped", &self.dropped)
            .field("open", &self.tx.is_some())
            .finish()
    }
}

impl<M: fmt::Debug + Send + 'static> ChannelSink<M> {
    /// A sink writing to the file at `path` (created/truncated), with a
    /// queue of `capacity` records and the given overflow `policy`.
    /// Frames are rendered with their `Debug` form; use
    /// [`ChannelSink::with_encoder`] for a custom rendering.
    ///
    /// # Errors
    ///
    /// File creation errors.
    pub fn create(
        path: impl AsRef<Path>,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> io::Result<Self> {
        Ok(Self::to_writer(File::create(path)?, capacity, policy))
    }

    /// Like [`ChannelSink::create`] for any writer (the writer moves to
    /// the background thread, which wraps it in a [`BufWriter`]).
    pub fn to_writer<W: Write + Send + 'static>(
        out: W,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Self {
        Self::with_encoder(out, capacity, policy, |frame: &M| format!("{frame:?}"))
    }
}

impl<M: Send + 'static> ChannelSink<M> {
    /// The fully general constructor: `frame` renders one frame to the
    /// string stored in the trace line's `"frame"` fields (it runs on the
    /// writer thread, never on the round loop).
    pub fn with_encoder<W, F>(out: W, capacity: usize, policy: OverflowPolicy, frame: F) -> Self
    where
        W: Write + Send + 'static,
        F: Fn(&M) -> String + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel::<SinkMsg<M>>(capacity.max(1));
        let writer = thread::Builder::new()
            .name("trace-writer".into())
            .spawn(move || -> io::Result<u64> {
                let mut out = BufWriter::new(out);
                let mut written = 0u64;
                for msg in rx {
                    match msg {
                        SinkMsg::Header(line) => {
                            out.write_all(line.as_bytes())?;
                            out.write_all(b"\n")?;
                        }
                        SinkMsg::Record(record) => {
                            out.write_all(record_line(&record, &frame).as_bytes())?;
                            out.write_all(b"\n")?;
                            written += 1;
                        }
                    }
                }
                out.flush()?;
                Ok(written)
            })
            .expect("spawn trace-writer thread");
        ChannelSink {
            tx: Some(tx),
            writer: Some(writer),
            policy,
            dropped: 0,
            history: Trace::new(TraceRetention::None),
        }
    }

    /// Additionally retain records in memory per `retention`, exactly as
    /// an [`InMemorySink`] would (records are cloned before streaming).
    #[must_use]
    pub fn with_history(mut self, retention: TraceRetention) -> Self {
        self.history = Trace::new(retention);
        self
    }

    /// Write `line` verbatim as the file's first line, ahead of every
    /// record. Recording tools use it to pin the channel model a trace
    /// was produced under (see `docs/TRACE_FORMAT.md`); call it at
    /// construction time, before any record is sent. The header is
    /// delivered through the same ordered queue as the records, so it
    /// always lands first.
    #[must_use]
    pub fn with_header(self, line: impl Into<String>) -> Self {
        if let Some(tx) = &self.tx {
            // The queue is empty at construction time, so this cannot
            // block; a dead writer surfaces later through the drop count.
            let _ = tx.send(SinkMsg::Header(line.into()));
        }
        self
    }

    /// Close the channel, join the writer thread, and return the final
    /// written/dropped counts.
    ///
    /// # Errors
    ///
    /// Any I/O error the writer thread hit (such records count as
    /// dropped).
    pub fn finish(mut self) -> io::Result<SinkReport> {
        let written = self.close()?;
        Ok(SinkReport {
            written,
            dropped: self.dropped,
        })
    }

    fn close(&mut self) -> io::Result<u64> {
        drop(self.tx.take());
        match self.writer.take() {
            Some(handle) => handle.join().expect("trace-writer thread panicked"),
            None => Ok(0),
        }
    }
}

impl<M> Drop for ChannelSink<M> {
    fn drop(&mut self) {
        // Close the channel and wait for the writer to drain + flush; a
        // dropped sink must never lose buffered lines. Send-side losses
        // after a writer failure are in the drop counter, but an I/O
        // error during the final drain/flush has no channel to report
        // through — be loud rather than silently truncate the trace
        // (call [`ChannelSink::finish`] to handle it programmatically).
        drop(self.tx.take());
        if let Some(handle) = self.writer.take() {
            match handle.join() {
                Ok(Ok(_written)) => {}
                Ok(Err(e)) => eprintln!(
                    "trace writer failed while draining: {e}; the trace file is incomplete"
                ),
                // Never panic from Drop (a double panic aborts).
                Err(_) => eprintln!("trace-writer thread panicked; the trace file is incomplete"),
            }
        }
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> ChannelSink<M> {
    /// Hand one record to the writer thread, honoring the overflow
    /// policy. The writer owns its copy; the one clone of the arena
    /// record happens here, off the engine's zero-allocation path only
    /// when streaming is actually on.
    fn send(&mut self, record: &RoundRecord<M>) {
        let Some(tx) = &self.tx else {
            self.dropped += 1;
            return;
        };
        // The writer disappears only on I/O failure; count the loss.
        if !send_bounded(tx, SinkMsg::Record(Box::new(record.clone())), self.policy) {
            self.dropped += 1;
        }
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> TraceSink<M> for ChannelSink<M> {
    fn record(&mut self, record: &RoundRecord<M>) {
        if self.history.retention().keeps_records() {
            self.history.push_ref(record);
        } else {
            self.history.note_round();
        }
        self.send(record);
    }

    fn record_mut(&mut self, record: &mut RoundRecord<M>) {
        // Send first (needs the contents), then let the history take the
        // buffers by swap.
        self.send(record);
        if self.history.retention().keeps_records() {
            self.history.push_swap(record);
        } else {
            self.history.note_round();
        }
    }

    fn note_round(&mut self) {
        self.history.note_round();
    }

    fn history(&self) -> &Trace<M> {
        &self.history
    }

    fn dropped_records(&self) -> u64 {
        self.dropped
    }
}

/// Escape `s` for embedding inside a JSON string literal (backslash,
/// quote, and control characters). The single escaper shared by the
/// trace encoder ([`record_line`]) and the workspace's hand-rolled JSON
/// emitters (no serde in the offline build).
pub fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one [`RoundRecord`] as the single line of JSON specified in
/// `docs/TRACE_FORMAT.md` (no trailing newline). `frame` renders a frame
/// to the plain string stored in the `"frame"` fields — it is escaped and
/// quoted here.
///
/// This is the one encoder shared by [`ChannelSink`], tests, and replay
/// tooling, so a retained in-memory trace and a streamed trace file can
/// be compared line for line.
pub fn record_line<M>(record: &RoundRecord<M>, frame: impl Fn(&M) -> String) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(128);
    write!(out, "{{\"round\":{},\"transmissions\":[", record.round).expect("write to String");
    for (i, (node, channel, f)) in record.transmissions().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"node\":{},\"channel\":{},\"frame\":\"{}\"}}",
            node.0,
            channel.0,
            json_escape(&frame(f))
        )
        .expect("write to String");
    }
    out.push_str("],\"listeners\":[");
    for (i, (node, channel)) in record.listeners().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"node\":{},\"channel\":{}}}", node.0, channel.0).expect("write to String");
    }
    out.push_str("],\"adversary\":[");
    for (i, (channel, emission)) in record.adversary().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match emission {
            Emission::Noise => {
                write!(out, "{{\"channel\":{},\"kind\":\"noise\"}}", channel.0)
                    .expect("write to String");
            }
            Emission::Spoof(f) => {
                write!(
                    out,
                    "{{\"channel\":{},\"kind\":\"spoof\",\"frame\":\"{}\"}}",
                    channel.0,
                    json_escape(&frame(f))
                )
                .expect("write to String");
            }
        }
    }
    // The record stores delivered frames sparsely (active channels only);
    // the wire format stays the dense per-channel array with nulls.
    out.push_str("],\"delivered\":[");
    for (i, slot) in record.delivered_dense().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match slot {
            Some(f) => {
                write!(out, "\"{}\"", json_escape(&frame(f))).expect("write to String");
            }
            None => out.push_str("null"),
        }
    }
    out.push(']');
    // Per-listener receptions that diverged from the wire outcome exist
    // only under per-listener channel models; the field is omitted when
    // empty, so ideal-model lines are byte-identical to the pre-model
    // format.
    if !record.reception_nodes.is_empty() {
        out.push_str(",\"receptions\":[");
        for (i, (node, heard)) in record.receptions().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match heard {
                Some(f) => write!(
                    out,
                    "{{\"node\":{},\"frame\":\"{}\"}}",
                    node.0,
                    json_escape(&frame(f))
                )
                .expect("write to String"),
                None => {
                    write!(out, "{{\"node\":{},\"frame\":null}}", node.0).expect("write to String")
                }
            }
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{ChannelId, NodeId};

    fn record(round: u64) -> RoundRecord<u32> {
        RoundRecord::from_parts(
            round,
            vec![(NodeId(0), ChannelId(1), 7)],
            vec![(NodeId(2), ChannelId(1))],
            vec![
                (ChannelId(0), Emission::Noise),
                (ChannelId(2), Emission::Spoof(9)),
            ],
            vec![None, Some(7), Some(9)],
        )
    }

    #[test]
    fn record_line_shape() {
        let line = record_line(&record(3), |m| m.to_string());
        assert_eq!(
            line,
            "{\"round\":3,\
             \"transmissions\":[{\"node\":0,\"channel\":1,\"frame\":\"7\"}],\
             \"listeners\":[{\"node\":2,\"channel\":1}],\
             \"adversary\":[{\"channel\":0,\"kind\":\"noise\"},\
             {\"channel\":2,\"kind\":\"spoof\",\"frame\":\"9\"}],\
             \"delivered\":[null,\"7\",\"9\"]}"
        );
    }

    #[test]
    fn record_line_escapes_frames() {
        let mut rec: RoundRecord<String> = RoundRecord::from_parts(
            0,
            vec![(NodeId(0), ChannelId(0), "evil\"\n".into())],
            vec![],
            vec![],
            vec![None],
        );
        let line = record_line(&rec, |m| m.clone());
        assert!(line.contains("evil\\\"\\n"));
        rec.tx_nodes.clear();
        rec.tx_channels.clear();
        rec.tx_frames.clear();
        assert!(!record_line(&rec, |m| m.clone()).contains('\n'));
    }

    #[test]
    fn in_memory_sink_keeps_retention_semantics() {
        let mut sink: InMemorySink<u32> = InMemorySink::new(TraceRetention::LastRounds(2));
        assert!(sink.wants_records());
        for r in 0..5 {
            sink.record(&record(r));
        }
        assert_eq!(sink.history().completed_rounds(), 5);
        assert_eq!(sink.history().len(), 2);
        assert_eq!(sink.dropped_records(), 0);

        let lean: InMemorySink<u32> = InMemorySink::new(TraceRetention::None);
        assert!(!lean.wants_records());
    }

    #[test]
    fn null_sink_counts_rounds_only() {
        let mut sink: NullSink<u32> = NullSink::new();
        assert!(!sink.wants_records());
        sink.note_round();
        sink.note_round();
        assert_eq!(sink.history().completed_rounds(), 2);
        assert!(sink.history().is_empty());
    }

    #[test]
    fn channel_sink_streams_every_record_in_order() {
        let path = std::env::temp_dir().join(format!("sink-order-{}.jsonl", std::process::id()));
        let mut sink: ChannelSink<u32> =
            ChannelSink::create(&path, 4, OverflowPolicy::Block).unwrap();
        for r in 0..50 {
            sink.record(&record(r));
        }
        assert_eq!(sink.history().completed_rounds(), 50);
        assert!(sink.history().is_empty(), "no history by default");
        let report = sink.finish().unwrap();
        assert_eq!(report.written, 50);
        assert_eq!(report.dropped, 0);
        let contents = std::fs::read_to_string(&path).unwrap();
        for (r, line) in contents.lines().enumerate() {
            assert!(line.starts_with(&format!("{{\"round\":{r},")));
        }
        assert_eq!(contents.lines().count(), 50);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn channel_sink_history_retains_records() {
        let mut sink: ChannelSink<u32> =
            ChannelSink::to_writer(io::sink(), 4, OverflowPolicy::Block)
                .with_history(TraceRetention::All);
        for r in 0..10 {
            sink.record(&record(r));
        }
        assert_eq!(sink.history().len(), 10);
        assert_eq!(sink.history().round(7).unwrap().round, 7);
    }
}
