//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

use crate::node::{ChannelId, NodeId};

/// Errors surfaced by [`Network`](crate::Network) and
/// [`Simulation`](crate::Simulation).
///
/// The engine validates its inputs (channel bounds, adversary budget) instead
/// of silently clamping them, so experiments can never accidentally run with
/// a stronger or weaker adversary than configured.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The network was configured with fewer than two channels.
    TooFewChannels {
        /// Channels requested.
        channels: usize,
    },
    /// The adversary budget `t` must satisfy `t < C`.
    BudgetTooLarge {
        /// Budget requested.
        budget: usize,
        /// Channels available.
        channels: usize,
    },
    /// An honest node used a channel outside `0..C`.
    ChannelOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Offending channel.
        channel: ChannelId,
        /// Channels available.
        channels: usize,
    },
    /// The adversary used a channel outside `0..C`.
    AdversaryChannelOutOfRange {
        /// Offending channel.
        channel: ChannelId,
        /// Channels available.
        channels: usize,
    },
    /// The adversary transmitted on more than `t` channels in one round.
    AdversaryBudgetExceeded {
        /// Channels the adversary attempted to use.
        used: usize,
        /// Configured budget `t`.
        budget: usize,
        /// Round in which the violation happened.
        round: u64,
    },
    /// The adversary listed the same channel twice in one round.
    AdversaryDuplicateChannel {
        /// Duplicated channel.
        channel: ChannelId,
        /// Round in which the violation happened.
        round: u64,
    },
    /// A simulation ran past its round limit without all nodes terminating.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Number of nodes still running.
        unfinished: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TooFewChannels { channels } => {
                write!(f, "network needs at least 2 channels, got {channels}")
            }
            EngineError::BudgetTooLarge { budget, channels } => write!(
                f,
                "adversary budget t={budget} must be smaller than channel count C={channels}"
            ),
            EngineError::ChannelOutOfRange {
                node,
                channel,
                channels,
            } => write!(
                f,
                "node {node} used {channel} but only {channels} channels exist"
            ),
            EngineError::AdversaryChannelOutOfRange { channel, channels } => write!(
                f,
                "adversary used {channel} but only {channels} channels exist"
            ),
            EngineError::AdversaryBudgetExceeded {
                used,
                budget,
                round,
            } => write!(
                f,
                "adversary transmitted on {used} channels in round {round}, budget is {budget}"
            ),
            EngineError::AdversaryDuplicateChannel { channel, round } => {
                write!(f, "adversary listed {channel} twice in round {round}")
            }
            EngineError::RoundLimitExceeded { limit, unfinished } => write!(
                f,
                "simulation hit the {limit}-round limit with {unfinished} nodes unfinished"
            ),
        }
    }
}

impl Error for EngineError {}
