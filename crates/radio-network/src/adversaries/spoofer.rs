//! A message-forging adversary.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::adversary::{Adversary, AdversaryAction, AdversaryView, Emission};
use crate::node::ChannelId;

/// Spoofs forged frames on `t` random channels every round.
///
/// The forged frame is produced by a caller-supplied factory, so protocol
/// test suites can inject *plausible* fakes (e.g. well-formed protocol
/// messages with wrong contents) rather than garbage. Spoofs that land on a
/// channel with an honest transmitter merely collide, so this adversary is
/// simultaneously a jammer.
#[derive(Clone, Debug)]
pub struct Spoofer<F> {
    rng: SmallRng,
    forge: F,
}

impl<F> Spoofer<F> {
    /// A spoofer forging frames with `forge(round, channel)`.
    pub fn new(seed: u64, forge: F) -> Self {
        Spoofer {
            rng: SmallRng::seed_from_u64(seed ^ 0x5F00_F5F0),
            forge,
        }
    }
}

impl<M, F> Adversary<M> for Spoofer<F>
where
    F: FnMut(u64, ChannelId) -> M,
{
    fn act(&mut self, round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        let budget = view.budget.min(view.channels);
        let picks = sample(&mut self.rng, view.channels, budget);
        let mut action = AdversaryAction::idle();
        for ch in picks.iter().map(ChannelId) {
            action.push(ch, Emission::Spoof((self.forge)(round, ch)));
        }
        action
    }

    fn name(&self) -> &'static str {
        "spoofer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn all_emissions_are_spoofs() {
        let trace: Trace<u64> = Trace::default();
        let view = AdversaryView {
            channels: 4,
            budget: 3,
            nodes: 2,
            trace: &trace,
        };
        let mut adv = Spoofer::new(1, |round, ch: ChannelId| round * 10 + ch.index() as u64);
        let action = adv.act(7, &view);
        assert_eq!(action.len(), 3);
        assert!(action.transmissions.iter().all(|(_, e)| e.is_spoof()));
    }
}
