//! A history-driven jammer targeting recently busy channels.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::adversary::{Adversary, AdversaryAction, AdversaryView};
use crate::node::ChannelId;

/// Jams the channels honest nodes used most over the last `window` rounds.
///
/// This exploits the hindsight granted by the model (the adversary learns
/// all random choices of completed rounds): protocols that favour particular
/// channels get those channels jammed. Ties and cold starts fall back to
/// random picks.
#[derive(Clone, Debug)]
pub struct BusyChannelJammer {
    rng: SmallRng,
    window: usize,
}

impl BusyChannelJammer {
    /// A jammer with RNG stream from `seed`, inspecting the last `window`
    /// completed rounds.
    pub fn new(seed: u64, window: usize) -> Self {
        BusyChannelJammer {
            rng: SmallRng::seed_from_u64(seed ^ 0x0B5E_55ED),
            window: window.max(1),
        }
    }
}

impl<M> Adversary<M> for BusyChannelJammer {
    fn act(&mut self, round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        let mut usage = vec![0u64; view.channels];
        let from = round.saturating_sub(self.window as u64);
        for rec in view.trace.records() {
            if rec.round < from {
                continue;
            }
            for (_, ch, _) in rec.transmissions() {
                usage[ch.index()] += 1;
            }
            for (_, ch) in rec.listeners() {
                usage[ch.index()] += 1;
            }
        }
        let budget = view.budget.min(view.channels);
        if usage.iter().all(|&u| u == 0) {
            let picks = sample(&mut self.rng, view.channels, budget);
            return AdversaryAction::jam(picks.iter().map(ChannelId));
        }
        // Rank channels by (usage desc, random tiebreak) and jam the top t.
        let mut order: Vec<usize> = (0..view.channels).collect();
        let jitter: Vec<u64> = (0..view.channels).map(|_| self.rng.next_u64()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(usage[c]), jitter[c]));
        AdversaryAction::jam(order.into_iter().take(budget).map(ChannelId))
    }

    fn name(&self) -> &'static str {
        "busy-channel-jammer"
    }
}

use rand::RngCore;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Network, NetworkConfig};
    use crate::node::Action;

    #[test]
    fn targets_the_busy_channel() {
        let cfg = NetworkConfig::new(4, 1).unwrap();
        let mut net: Network<u8> = Network::new(cfg);
        // Round 0: node 0 transmits on channel 2; nobody jams yet.
        net.resolve_round(
            &[Action::Transmit {
                channel: ChannelId(2),
                frame: 1,
            }],
            &AdversaryAction::idle(),
        )
        .unwrap();

        let mut adv = BusyChannelJammer::new(5, 8);
        let view = AdversaryView {
            channels: 4,
            budget: 1,
            nodes: 1,
            trace: net.trace(),
        };
        let action = Adversary::<u8>::act(&mut adv, 1, &view);
        assert_eq!(action.transmissions[0].0, ChannelId(2));
    }

    #[test]
    fn cold_start_is_random_but_in_budget() {
        let trace: crate::trace::Trace<u8> = crate::trace::Trace::default();
        let view = AdversaryView {
            channels: 6,
            budget: 2,
            nodes: 3,
            trace: &trace,
        };
        let mut adv = BusyChannelJammer::new(5, 4);
        let action = Adversary::<u8>::act(&mut adv, 0, &view);
        assert_eq!(action.len(), 2);
    }
}
