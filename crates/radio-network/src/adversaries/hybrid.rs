//! A mixed jam/spoof adversary.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use crate::adversary::{Adversary, AdversaryAction, AdversaryView, Emission};
use crate::node::ChannelId;

/// Each round, picks `t` random channels; on each, flips a biased coin
/// between jamming (noise) and spoofing (forged frame).
///
/// `spoof_probability` of 0.0 degenerates to [`RandomJammer`]-like behaviour,
/// 1.0 to [`Spoofer`]-like behaviour.
///
/// [`RandomJammer`]: crate::adversaries::RandomJammer
/// [`Spoofer`]: crate::adversaries::Spoofer
#[derive(Clone, Debug)]
pub struct HybridAdversary<F> {
    rng: SmallRng,
    spoof_probability: f64,
    forge: F,
}

impl<F> HybridAdversary<F> {
    /// A hybrid attacker; forged frames come from `forge(round, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if `spoof_probability` is not within `[0, 1]`.
    pub fn new(seed: u64, spoof_probability: f64, forge: F) -> Self {
        assert!(
            (0.0..=1.0).contains(&spoof_probability),
            "spoof_probability must be in [0,1], got {spoof_probability}"
        );
        HybridAdversary {
            rng: SmallRng::seed_from_u64(seed ^ 0x11B2_1DAD),
            spoof_probability,
            forge,
        }
    }
}

impl<M, F> Adversary<M> for HybridAdversary<F>
where
    F: FnMut(u64, ChannelId) -> M,
{
    fn act(&mut self, round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        let budget = view.budget.min(view.channels);
        let picks = sample(&mut self.rng, view.channels, budget);
        let mut action = AdversaryAction::idle();
        for ch in picks.iter().map(ChannelId) {
            if self.rng.gen_bool(self.spoof_probability) {
                action.push(ch, Emission::Spoof((self.forge)(round, ch)));
            } else {
                action.push(ch, Emission::Noise);
            }
        }
        action
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn mixes_noise_and_spoofs() {
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 8,
            budget: 4,
            nodes: 2,
            trace: &trace,
        };
        let mut adv = HybridAdversary::new(2, 0.5, |_, _| 0u8);
        let (mut noise, mut spoof) = (0, 0);
        for round in 0..100 {
            for (_, e) in adv.act(round, &view).transmissions {
                match e {
                    Emission::Noise => noise += 1,
                    Emission::Spoof(_) => spoof += 1,
                }
            }
        }
        assert!(noise > 50, "expected a healthy mix, noise={noise}");
        assert!(spoof > 50, "expected a healthy mix, spoof={spoof}");
    }

    #[test]
    #[should_panic(expected = "spoof_probability")]
    fn rejects_bad_probability() {
        let _ = HybridAdversary::new(0, 1.5, |_: u64, _: ChannelId| 0u8);
    }
}
