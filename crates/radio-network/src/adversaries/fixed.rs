//! A jammer glued to a fixed channel set.

use crate::adversary::{Adversary, AdversaryAction, AdversaryView};
use crate::node::ChannelId;

/// Jams the same set of channels every round.
///
/// Useful as a worst case for protocols whose channel usage is static, and
/// as a deterministic fixture in tests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixedJammer {
    channels: Vec<ChannelId>,
}

impl FixedJammer {
    /// Jam exactly `channels` every round.
    pub fn new<I>(channels: I) -> Self
    where
        I: IntoIterator<Item = ChannelId>,
    {
        let mut channels: Vec<ChannelId> = channels.into_iter().collect();
        channels.sort_unstable();
        channels.dedup();
        FixedJammer { channels }
    }

    /// Jam channels `0..k` every round.
    pub fn first_channels(k: usize) -> Self {
        FixedJammer::new((0..k).map(ChannelId))
    }
}

impl<M> Adversary<M> for FixedJammer {
    fn act(&mut self, _round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        AdversaryAction::jam(
            self.channels
                .iter()
                .copied()
                .filter(|c| c.index() < view.channels)
                .take(view.budget),
        )
    }

    fn name(&self) -> &'static str {
        "fixed-jammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn jams_declared_channels() {
        let mut adv = FixedJammer::first_channels(2);
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 3,
            budget: 2,
            nodes: 4,
            trace: &trace,
        };
        let action = adv.act(0, &view);
        let chans: Vec<_> = action
            .transmissions
            .iter()
            .map(|(c, _)| c.index())
            .collect();
        assert_eq!(chans, vec![0, 1]);
    }

    #[test]
    fn dedups_and_respects_budget() {
        let mut adv = FixedJammer::new([ChannelId(1), ChannelId(1), ChannelId(0), ChannelId(2)]);
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 3,
            budget: 2,
            nodes: 4,
            trace: &trace,
        };
        let action = adv.act(0, &view);
        assert_eq!(action.len(), 2);
    }
}
