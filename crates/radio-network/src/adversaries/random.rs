//! A jammer that picks fresh random channels each round.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::adversary::{Adversary, AdversaryAction, AdversaryView};
use crate::node::ChannelId;

/// Jams `t` uniformly random distinct channels per round.
///
/// This is the natural "oblivious" attacker: strong against protocols that
/// reuse channels predictably, weak against channel hopping. Deterministic
/// given its seed.
#[derive(Clone, Debug)]
pub struct RandomJammer {
    rng: SmallRng,
}

impl RandomJammer {
    /// A jammer with its own RNG stream derived from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomJammer {
            rng: SmallRng::seed_from_u64(seed ^ 0xBAD_5EED),
        }
    }
}

impl<M> Adversary<M> for RandomJammer {
    fn act(&mut self, _round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        let picks = sample(&mut self.rng, view.channels, view.budget.min(view.channels));
        AdversaryAction::jam(picks.iter().map(ChannelId))
    }

    fn name(&self) -> &'static str {
        "random-jammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn deterministic_given_seed() {
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 8,
            budget: 3,
            nodes: 4,
            trace: &trace,
        };
        let mut a = RandomJammer::new(1);
        let mut b = RandomJammer::new(1);
        for round in 0..20 {
            assert_eq!(a.act(round, &view), b.act(round, &view));
        }
    }

    #[test]
    fn covers_all_channels_eventually() {
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 4,
            budget: 1,
            nodes: 4,
            trace: &trace,
        };
        let mut adv = RandomJammer::new(3);
        let mut hit = [false; 4];
        for round in 0..200 {
            for (c, _) in adv.act(round, &view).transmissions {
                hit[c.index()] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "jammer never touched some channel");
    }
}
