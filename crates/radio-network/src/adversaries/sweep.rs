//! A jammer that sweeps a window across the spectrum.

use crate::adversary::{Adversary, AdversaryAction, AdversaryView};
use crate::node::ChannelId;

/// Jams a contiguous window of `t` channels, sliding by `t` each round
/// (wrapping). Over `ceil(C/t)` rounds every channel gets hit.
///
/// A classic pattern for frequency-sweeping interference sources.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepJammer {
    offset: usize,
}

impl SweepJammer {
    /// A sweep starting at channel 0.
    pub fn new() -> Self {
        SweepJammer::default()
    }

    /// A sweep starting at `offset`.
    pub fn starting_at(offset: usize) -> Self {
        SweepJammer { offset }
    }
}

impl<M> Adversary<M> for SweepJammer {
    fn act(&mut self, _round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        if view.budget == 0 {
            return AdversaryAction::idle();
        }
        let start = self.offset % view.channels;
        let action = AdversaryAction::jam(
            (0..view.budget.min(view.channels)).map(|i| ChannelId((start + i) % view.channels)),
        );
        self.offset = (self.offset + view.budget) % view.channels;
        action
    }

    fn name(&self) -> &'static str {
        "sweep-jammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn sweeps_entire_spectrum() {
        let trace: Trace<u8> = Trace::default();
        let view = AdversaryView {
            channels: 5,
            budget: 2,
            nodes: 4,
            trace: &trace,
        };
        let mut adv = SweepJammer::new();
        let mut hit = [0u32; 5];
        for round in 0..10 {
            for (c, _) in adv.act(round, &view).transmissions {
                hit[c.index()] += 1;
            }
        }
        assert!(hit.iter().all(|&h| h > 0));
        // 10 rounds x 2 channels = 20 jams spread over 5 channels.
        assert_eq!(hit.iter().sum::<u32>(), 20);
    }
}
