//! A roster of protocol-agnostic adversaries.
//!
//! These attackers only use information the model grants them: the public
//! parameters and the trace of completed rounds. Protocol-aware attackers
//! (which recompute a protocol's deterministic schedule to jam optimally —
//! e.g. the triangle-isolation attack of Section 5 or the simulating
//! adversary of Theorem 2) live in the `fame` crate next to the protocols
//! they target.

mod busy;
mod fixed;
mod hybrid;
mod random;
mod spoofer;
mod sweep;

pub use busy::BusyChannelJammer;
pub use fixed::FixedJammer;
pub use hybrid::HybridAdversary;
pub use random::RandomJammer;
pub use spoofer::Spoofer;
pub use sweep::SweepJammer;

use crate::adversary::{Adversary, AdversaryAction, AdversaryView};

/// The benign environment: never transmits.
///
/// ```rust
/// use radio_network::{Adversary, AdversaryView, Trace, adversaries::NoAdversary};
/// let mut adv = NoAdversary;
/// let trace: Trace<u32> = Trace::default();
/// let view = AdversaryView { channels: 3, budget: 2, nodes: 5, trace: &trace };
/// assert!(adv.act(0, &view).is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoAdversary;

impl<M> Adversary<M> for NoAdversary {
    fn act(&mut self, _round: u64, _view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        AdversaryAction::idle()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    /// Every stock adversary must respect the budget on every round, for a
    /// spread of configurations.
    #[test]
    fn roster_respects_budget() {
        let trace: Trace<u64> = Trace::default();
        for (c, t) in [(2usize, 1usize), (3, 2), (5, 2), (8, 7), (16, 3)] {
            let view = AdversaryView {
                channels: c,
                budget: t,
                nodes: 10,
                trace: &trace,
            };
            let mut roster: Vec<Box<dyn Adversary<u64>>> = vec![
                Box::new(NoAdversary),
                Box::new(RandomJammer::new(7)),
                Box::new(SweepJammer::new()),
                Box::new(FixedJammer::first_channels(t)),
                Box::new(BusyChannelJammer::new(9, 8)),
                Box::new(Spoofer::new(3, |round, ch: crate::ChannelId| {
                    round + ch.index() as u64
                })),
                Box::new(HybridAdversary::new(5, 0.5, |_, _| 42u64)),
            ];
            for adv in roster.iter_mut() {
                for round in 0..50 {
                    let action = adv.act(round, &view);
                    assert!(
                        action.len() <= t,
                        "{} exceeded budget: {} > {} (C={})",
                        adv.name(),
                        action.len(),
                        t,
                        c
                    );
                    let mut chans: Vec<_> = action.transmissions.iter().map(|(c, _)| *c).collect();
                    chans.sort_unstable();
                    let before = chans.len();
                    chans.dedup();
                    assert_eq!(before, chans.len(), "{} duplicated a channel", adv.name());
                    for ch in chans {
                        assert!(ch.index() < c, "{} out of range", adv.name());
                    }
                }
            }
        }
    }
}
