//! # radio-network
//!
//! A synchronous, multi-channel, single-hop radio network simulator with a
//! malicious (jamming + spoofing) adversary, implementing the exact model of
//!
//! > Dolev, Gilbert, Guerraoui, Newport.
//! > *Secure Communication Over Radio Channels.* PODC 2008, Section 3.
//!
//! ## Model
//!
//! * `n` honest nodes, `C > 1` channels, lock-step synchronous rounds.
//! * Per round each node either **transmits** on one channel, **listens** on
//!   one channel, or **sleeps**.
//! * If exactly one transmitter (honest or adversarial) is active on a
//!   channel, every listener on that channel receives the frame. If zero or
//!   two-or-more transmitters are active, listeners receive nothing — and
//!   nodes *cannot* distinguish silence from collision (no collision
//!   detection).
//! * The adversary transmits on up to `t < C` channels per round and listens
//!   on all `C` channels. It can **jam** (collide with an honest frame) and
//!   **spoof** (inject a fake frame on an otherwise idle channel). It learns
//!   every completed round in full — including the honest nodes' random
//!   choices — but never the current round's choices before acting.
//!
//! ## Architecture (module ↦ paper section)
//!
//! * [`Network`] (`engine`) — pure round-resolution engine implementing
//!   the §3 channel semantics above. Its round loop is arena-backed and
//!   **activity-proportional**: an epoch-stamped active-channel worklist
//!   plus per-channel transmitter/listener spans make a round cost
//!   O(active channels + participants), not O(C) — and
//!   [`Network::resolve_round_sparse`] accepts only the awake nodes'
//!   actions so cost is independent of `n` too. Both entry points return
//!   a borrowed [`RoundView`] over reused flat storage, so steady-state
//!   rounds are allocation-free (owned escape hatch:
//!   [`RoundView::to_resolution`]).
//! * [`Protocol`] (`node`) — the state-machine trait honest §3 nodes
//!   implement, including the sleep/wake contract
//!   ([`Protocol::next_wake`] / [`NEVER`]) that lets long-sleeping nodes
//!   skip their idle rounds.
//! * [`ChannelModel`] (`channel_model`) — the pluggable physical-layer
//!   policy deciding what each listener hears from a channel's
//!   transmitter/adversary spans. [`ChannelModelSpec::Ideal`] (the
//!   default) reproduces the §3 semantics bit-for-bit; `Lossy`,
//!   `Capture`, and `Geometric` bend them (see
//!   `docs/CHANNEL_MODELS.md`). Models are pure functions of a derived
//!   seed, so every run replays deterministically.
//! * [`Adversary`] (`adversary`) — the §3 attacker trait (budget `t`,
//!   full hindsight); batteries included in [`adversaries`].
//! * [`Simulation`] — drives a vector of protocol nodes plus one adversary
//!   against a [`Network`] until completion, enforcing the §3 information
//!   flow, collecting a [`Trace`] and [`Stats`]. Its per-round loop pops
//!   a wake-queue and visits only the due nodes, feeding the sparse
//!   engine entry point.
//! * [`TraceSink`] (`sink`) — where finished [`RoundRecord`]s go:
//!   retained in memory ([`InMemorySink`]), discarded ([`NullSink`]), or
//!   streamed off the round loop to a line-delimited JSON file by a
//!   background writer thread ([`ChannelSink`]; format in
//!   `docs/TRACE_FORMAT.md`).
//! * `seed` — deterministic seed-stream derivation, the reproducibility
//!   substrate every experiment relies on (not in the paper).
//!
//! ## Example
//!
//! ```rust
//! use radio_network::{adversaries::RandomJammer, NetworkConfig, Simulation};
//! use radio_network::testing::BeaconNode;
//!
//! # fn main() -> Result<(), radio_network::EngineError> {
//! // Three channels, adversary may disrupt up to two per round.
//! let cfg = NetworkConfig::new(3, 2)?;
//! // Ten beacon nodes that broadcast/listen at random (a toy protocol).
//! let nodes: Vec<BeaconNode> = (0..10).map(|i| BeaconNode::new(i, 3, 7)).collect();
//! let adversary = RandomJammer::new(42);
//! let mut sim = Simulation::new(cfg, nodes, adversary, 99)?;
//! let report = sim.run(1_000)?;
//! assert!(report.rounds <= 1_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversaries;
mod adversary;
mod channel_model;
mod engine;
mod error;
mod node;
pub mod seed;
mod simulation;
mod sink;
mod stats;
pub mod testing;
mod trace;

pub use adversary::{Adversary, AdversaryAction, AdversaryView, Emission};
pub use channel_model::{
    ChannelContext, ChannelModel, ChannelModelSpec, ChannelVerdict, EmissionKind, ListenerOutcome,
    TxSpan,
};
pub use engine::{
    ChannelOutcome, Network, NetworkConfig, OutcomeView, Participants, RoundResolution, RoundView,
};
pub use error::EngineError;
pub use node::{Action, ChannelId, NodeId, Protocol, Reception, NEVER};
pub use simulation::{Inspector, Simulation, SimulationReport};
pub use sink::{
    json_escape, record_line, send_bounded, ChannelSink, InMemorySink, NullSink, OverflowPolicy,
    SinkReport, TraceSink,
};
pub use stats::Stats;
pub use trace::{RoundRecord, Trace, TraceRetention};
