//! Execution traces: the complete, per-round record of everything that
//! happened on the air.
//!
//! Traces serve three masters:
//! * the **adversary**, which (per the model) learns all completed rounds;
//! * **tests**, which assert invariants over executions;
//! * **experiments**, which mine traces for statistics.

use std::collections::VecDeque;

use crate::adversary::Emission;
use crate::node::{ChannelId, NodeId};

/// How much history a [`Trace`] retains.
///
/// Long experiments (the group-key setup runs for `Θ(n·t³·log n)` rounds)
/// would otherwise accumulate gigabytes of per-round records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceRetention {
    /// Keep every round (default; right for tests and short runs).
    #[default]
    All,
    /// Keep only the most recent `k` rounds; older records are dropped but
    /// aggregate statistics remain exact.
    LastRounds(usize),
    /// Keep no per-round records at all. The engine then skips building
    /// records entirely — the allocation-free hot path for multi-trial
    /// experiment sweeps. Aggregate [`Stats`](crate::Stats) remain exact,
    /// but adversaries that mine the trace see an empty history.
    None,
}

impl TraceRetention {
    /// `true` if this policy stores per-round records at all.
    pub fn keeps_records(&self) -> bool {
        !matches!(self, TraceRetention::None)
    }
}

/// Everything that happened in one round.
#[derive(PartialEq, Eq, Debug)]
pub struct RoundRecord<M> {
    /// Round number (0-based).
    pub round: u64,
    /// Honest transmissions `(node, channel, frame)`.
    pub transmissions: Vec<(NodeId, ChannelId, M)>,
    /// Honest listeners `(node, channel)`.
    pub listeners: Vec<(NodeId, ChannelId)>,
    /// The adversary's emissions this round.
    pub adversary: Vec<(ChannelId, Emission<M>)>,
    /// Per-channel resolution: `Some(frame)` if a frame was delivered to
    /// listeners of that channel (index = channel).
    pub delivered: Vec<Option<M>>,
}

/// Hand-rolled so that [`Clone::clone_from`] reuses the destination's
/// vector capacities field by field — the engine's record arena and
/// [`Trace::push_ref`]'s bounded-window recycling depend on it to keep
/// the retention-on round loop allocation-free at steady state (a derived
/// `Clone` would fall back to allocate-and-drop).
impl<M: Clone> Clone for RoundRecord<M> {
    fn clone(&self) -> Self {
        RoundRecord {
            round: self.round,
            transmissions: self.transmissions.clone(),
            listeners: self.listeners.clone(),
            adversary: self.adversary.clone(),
            delivered: self.delivered.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.round = source.round;
        self.transmissions.clone_from(&source.transmissions);
        self.listeners.clone_from(&source.listeners);
        self.adversary.clone_from(&source.adversary);
        self.delivered.clone_from(&source.delivered);
    }
}

impl<M> RoundRecord<M> {
    /// Channels on which at least one honest node transmitted.
    pub fn busy_channels(&self) -> Vec<ChannelId> {
        let mut chans: Vec<ChannelId> = self.transmissions.iter().map(|&(_, c, _)| c).collect();
        chans.sort_unstable();
        chans.dedup();
        chans
    }

    /// `true` if the adversary delivered a spoofed frame on `channel` —
    /// i.e. it spoofed there and no honest node transmitted on it.
    pub fn spoof_delivered(&self, channel: ChannelId) -> bool {
        let adversary_spoofed = self
            .adversary
            .iter()
            .any(|(c, e)| *c == channel && e.is_spoof());
        let honest_busy = self.transmissions.iter().any(|&(_, c, _)| c == channel);
        adversary_spoofed && !honest_busy && self.delivered[channel.index()].is_some()
    }
}

/// The record of an execution: an ordered collection of [`RoundRecord`]s
/// (subject to [`TraceRetention`]).
#[derive(Clone, Debug)]
pub struct Trace<M> {
    retention: TraceRetention,
    records: VecDeque<RoundRecord<M>>,
    completed_rounds: u64,
}

impl<M> Trace<M> {
    /// An empty trace with the given retention policy.
    pub fn new(retention: TraceRetention) -> Self {
        Trace {
            retention,
            records: VecDeque::new(),
            completed_rounds: 0,
        }
    }

    /// Total number of completed rounds (independent of retention).
    pub fn completed_rounds(&self) -> u64 {
        self.completed_rounds
    }

    /// The retention policy this trace applies on [`Trace::push`].
    pub fn retention(&self) -> TraceRetention {
        self.retention
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &RoundRecord<M>> {
        self.records.iter()
    }

    /// The most recent retained record, if any.
    pub fn last(&self) -> Option<&RoundRecord<M>> {
        self.records.back()
    }

    /// The record for round `round`, if still retained.
    pub fn round(&self, round: u64) -> Option<&RoundRecord<M>> {
        // Records are contiguous, so index arithmetic suffices.
        let first = self.records.front()?.round;
        if round < first {
            return None;
        }
        self.records.get((round - first) as usize)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append the record of the next round, applying the retention
    /// policy. Records must arrive in round order (starting at the
    /// current [`Trace::completed_rounds`]); custom
    /// [`TraceSink`](crate::TraceSink) implementations use this to
    /// maintain their retained history.
    pub fn push(&mut self, record: RoundRecord<M>) {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        self.completed_rounds += 1;
        match self.retention {
            TraceRetention::None => {}
            TraceRetention::All => self.records.push_back(record),
            TraceRetention::LastRounds(k) => {
                self.records.push_back(record);
                while self.records.len() > k {
                    self.records.pop_front();
                }
            }
        }
    }

    /// Append the record of the next round *by reference*, applying the
    /// retention policy — the arena-friendly sibling of [`Trace::push`]
    /// for sinks that receive `&RoundRecord` from the engine's record
    /// arena.
    ///
    /// Under [`TraceRetention::LastRounds`] at capacity, the oldest
    /// retained record is **recycled**: popped, overwritten in place via
    /// [`Clone::clone_from`] (which reuses its vector capacities), and
    /// pushed back — so a warm bounded window retains records without
    /// allocating, as the counting-allocator test in `tests/zero_alloc.rs`
    /// verifies.
    pub fn push_ref(&mut self, record: &RoundRecord<M>)
    where
        M: Clone,
    {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        self.completed_rounds += 1;
        match self.retention {
            TraceRetention::None => {}
            TraceRetention::All => self.records.push_back(record.clone()),
            TraceRetention::LastRounds(0) => {}
            TraceRetention::LastRounds(k) => {
                if self.records.len() >= k {
                    let mut recycled = self.records.pop_front().expect("len >= k >= 1");
                    while self.records.len() >= k {
                        self.records.pop_front();
                    }
                    recycled.clone_from(record);
                    self.records.push_back(recycled);
                } else {
                    self.records.push_back(record.clone());
                }
            }
        }
    }

    /// Append the record of the next round by **swap**: the retained copy
    /// takes `record`'s buffers wholesale, and `record` gets the evicted
    /// record's (equally warm) buffers back in exchange.
    ///
    /// This is the zero-copy sibling of [`Trace::push_ref`] for the
    /// engine's record arena: under [`TraceRetention::LastRounds`] at
    /// capacity, retaining a round costs two `memswap`s of vector
    /// headers — no element copies at all — and the arena keeps
    /// warm-capacity buffers to rebuild into next round. Policies that
    /// cannot hand buffers back ([`TraceRetention::All`] must keep
    /// growing) fall back to cloning, leaving `record` untouched.
    pub fn push_swap(&mut self, record: &mut RoundRecord<M>)
    where
        M: Clone,
    {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        match self.retention {
            TraceRetention::LastRounds(k) if k > 0 && self.records.len() >= k => {
                self.completed_rounds += 1;
                let mut recycled = self.records.pop_front().expect("len >= k >= 1");
                while self.records.len() >= k {
                    self.records.pop_front();
                }
                std::mem::swap(&mut recycled, record);
                self.records.push_back(recycled);
            }
            _ => self.push_ref(record),
        }
    }

    /// Count a completed round without storing a record (the
    /// [`TraceRetention::None`] fast path — the engine never builds the
    /// record in the first place).
    pub fn note_round(&mut self) {
        self.completed_rounds += 1;
    }
}

impl<M> Default for Trace<M> {
    fn default() -> Self {
        Trace::new(TraceRetention::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64) -> RoundRecord<u32> {
        RoundRecord {
            round,
            transmissions: vec![(NodeId(0), ChannelId(0), round as u32)],
            listeners: vec![(NodeId(1), ChannelId(0))],
            adversary: vec![],
            delivered: vec![Some(round as u32), None],
        }
    }

    #[test]
    fn retains_all_by_default() {
        let mut trace = Trace::default();
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.completed_rounds(), 100);
        assert_eq!(trace.round(57).unwrap().round, 57);
    }

    #[test]
    fn bounded_retention_drops_oldest() {
        let mut trace = Trace::new(TraceRetention::LastRounds(10));
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.completed_rounds(), 100);
        assert!(trace.round(89).is_none());
        assert_eq!(trace.round(90).unwrap().round, 90);
        assert_eq!(trace.round(99).unwrap().round, 99);
        assert!(trace.round(100).is_none());
    }

    #[test]
    fn push_ref_matches_push_across_retentions() {
        for retention in [
            TraceRetention::All,
            TraceRetention::LastRounds(0),
            TraceRetention::LastRounds(1),
            TraceRetention::LastRounds(10),
            TraceRetention::None,
        ] {
            let mut owned = Trace::new(retention);
            let mut by_ref = Trace::new(retention);
            for r in 0..40 {
                owned.push(record(r));
                by_ref.push_ref(&record(r));
            }
            assert_eq!(owned.completed_rounds(), by_ref.completed_rounds());
            assert_eq!(owned.len(), by_ref.len(), "{retention:?}");
            assert!(owned.records().zip(by_ref.records()).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn push_swap_matches_push_and_returns_warm_buffers() {
        for retention in [
            TraceRetention::All,
            TraceRetention::LastRounds(0),
            TraceRetention::LastRounds(1),
            TraceRetention::LastRounds(10),
            TraceRetention::None,
        ] {
            let mut owned = Trace::new(retention);
            let mut by_swap = Trace::new(retention);
            let mut arena = record(0);
            for r in 0..40 {
                owned.push(record(r));
                // Rebuild the "arena" record in place, like the engine.
                arena.clone_from(&record(r));
                by_swap.push_swap(&mut arena);
                // Whatever buffers came back, the arena record must be a
                // valid RoundRecord (the engine clears + refills next
                // round); at window capacity they are the evicted
                // round's, otherwise unchanged.
                if let TraceRetention::LastRounds(k) = retention {
                    if k > 0 && r as usize >= k {
                        assert_eq!(arena.round, r - k as u64, "{retention:?}");
                    }
                }
            }
            assert_eq!(owned.completed_rounds(), by_swap.completed_rounds());
            assert_eq!(owned.len(), by_swap.len(), "{retention:?}");
            assert!(owned.records().zip(by_swap.records()).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut dst = record(0);
        dst.transmissions.reserve(64);
        let src = record(7);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn spoof_detection_requires_idle_channel() {
        let mut rec = record(0);
        rec.adversary = vec![(ChannelId(0), Emission::Spoof(9))];
        // Honest node transmits on ch0 too => not a delivered spoof.
        assert!(!rec.spoof_delivered(ChannelId(0)));

        let rec2: RoundRecord<u32> = RoundRecord {
            round: 0,
            transmissions: vec![],
            listeners: vec![(NodeId(1), ChannelId(1))],
            adversary: vec![(ChannelId(1), Emission::Spoof(9))],
            delivered: vec![None, Some(9)],
        };
        assert!(rec2.spoof_delivered(ChannelId(1)));
    }

    #[test]
    fn busy_channels_dedup_sorted() {
        let rec: RoundRecord<u32> = RoundRecord {
            round: 0,
            transmissions: vec![
                (NodeId(0), ChannelId(2), 1),
                (NodeId(1), ChannelId(0), 2),
                (NodeId(2), ChannelId(2), 3),
            ],
            listeners: vec![],
            adversary: vec![],
            delivered: vec![None, None, None],
        };
        assert_eq!(rec.busy_channels(), vec![ChannelId(0), ChannelId(2)]);
    }
}
