//! Execution traces: the complete, per-round record of everything that
//! happened on the air.
//!
//! Traces serve three masters:
//! * the **adversary**, which (per the model) learns all completed rounds;
//! * **tests**, which assert invariants over executions;
//! * **experiments**, which mine traces for statistics.

use std::collections::VecDeque;

use crate::adversary::Emission;
use crate::node::{ChannelId, NodeId};

/// How much history a [`Trace`] retains.
///
/// Long experiments (the group-key setup runs for `Θ(n·t³·log n)` rounds)
/// would otherwise accumulate gigabytes of per-round records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceRetention {
    /// Keep every round (default; right for tests and short runs).
    #[default]
    All,
    /// Keep only the most recent `k` rounds; older records are dropped but
    /// aggregate statistics remain exact.
    LastRounds(usize),
    /// Keep no per-round records at all. The engine then skips building
    /// records entirely — the allocation-free hot path for multi-trial
    /// experiment sweeps. Aggregate [`Stats`](crate::Stats) remain exact,
    /// but adversaries that mine the trace see an empty history.
    None,
}

impl TraceRetention {
    /// `true` if this policy stores per-round records at all.
    pub fn keeps_records(&self) -> bool {
        !matches!(self, TraceRetention::None)
    }
}

/// Everything that happened in one round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundRecord<M> {
    /// Round number (0-based).
    pub round: u64,
    /// Honest transmissions `(node, channel, frame)`.
    pub transmissions: Vec<(NodeId, ChannelId, M)>,
    /// Honest listeners `(node, channel)`.
    pub listeners: Vec<(NodeId, ChannelId)>,
    /// The adversary's emissions this round.
    pub adversary: Vec<(ChannelId, Emission<M>)>,
    /// Per-channel resolution: `Some(frame)` if a frame was delivered to
    /// listeners of that channel (index = channel).
    pub delivered: Vec<Option<M>>,
}

impl<M> RoundRecord<M> {
    /// Channels on which at least one honest node transmitted.
    pub fn busy_channels(&self) -> Vec<ChannelId> {
        let mut chans: Vec<ChannelId> = self.transmissions.iter().map(|&(_, c, _)| c).collect();
        chans.sort_unstable();
        chans.dedup();
        chans
    }

    /// `true` if the adversary delivered a spoofed frame on `channel` —
    /// i.e. it spoofed there and no honest node transmitted on it.
    pub fn spoof_delivered(&self, channel: ChannelId) -> bool {
        let adversary_spoofed = self
            .adversary
            .iter()
            .any(|(c, e)| *c == channel && e.is_spoof());
        let honest_busy = self.transmissions.iter().any(|&(_, c, _)| c == channel);
        adversary_spoofed && !honest_busy && self.delivered[channel.index()].is_some()
    }
}

/// The record of an execution: an ordered collection of [`RoundRecord`]s
/// (subject to [`TraceRetention`]).
#[derive(Clone, Debug)]
pub struct Trace<M> {
    retention: TraceRetention,
    records: VecDeque<RoundRecord<M>>,
    completed_rounds: u64,
}

impl<M> Trace<M> {
    /// An empty trace with the given retention policy.
    pub fn new(retention: TraceRetention) -> Self {
        Trace {
            retention,
            records: VecDeque::new(),
            completed_rounds: 0,
        }
    }

    /// Total number of completed rounds (independent of retention).
    pub fn completed_rounds(&self) -> u64 {
        self.completed_rounds
    }

    /// The retention policy this trace applies on [`Trace::push`].
    pub fn retention(&self) -> TraceRetention {
        self.retention
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &RoundRecord<M>> {
        self.records.iter()
    }

    /// The most recent retained record, if any.
    pub fn last(&self) -> Option<&RoundRecord<M>> {
        self.records.back()
    }

    /// The record for round `round`, if still retained.
    pub fn round(&self, round: u64) -> Option<&RoundRecord<M>> {
        // Records are contiguous, so index arithmetic suffices.
        let first = self.records.front()?.round;
        if round < first {
            return None;
        }
        self.records.get((round - first) as usize)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append the record of the next round, applying the retention
    /// policy. Records must arrive in round order (starting at the
    /// current [`Trace::completed_rounds`]); custom
    /// [`TraceSink`](crate::TraceSink) implementations use this to
    /// maintain their retained history.
    pub fn push(&mut self, record: RoundRecord<M>) {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        self.completed_rounds += 1;
        match self.retention {
            TraceRetention::None => {}
            TraceRetention::All => self.records.push_back(record),
            TraceRetention::LastRounds(k) => {
                self.records.push_back(record);
                while self.records.len() > k {
                    self.records.pop_front();
                }
            }
        }
    }

    /// Count a completed round without storing a record (the
    /// [`TraceRetention::None`] fast path — the engine never builds the
    /// record in the first place).
    pub fn note_round(&mut self) {
        self.completed_rounds += 1;
    }
}

impl<M> Default for Trace<M> {
    fn default() -> Self {
        Trace::new(TraceRetention::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64) -> RoundRecord<u32> {
        RoundRecord {
            round,
            transmissions: vec![(NodeId(0), ChannelId(0), round as u32)],
            listeners: vec![(NodeId(1), ChannelId(0))],
            adversary: vec![],
            delivered: vec![Some(round as u32), None],
        }
    }

    #[test]
    fn retains_all_by_default() {
        let mut trace = Trace::default();
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.completed_rounds(), 100);
        assert_eq!(trace.round(57).unwrap().round, 57);
    }

    #[test]
    fn bounded_retention_drops_oldest() {
        let mut trace = Trace::new(TraceRetention::LastRounds(10));
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.completed_rounds(), 100);
        assert!(trace.round(89).is_none());
        assert_eq!(trace.round(90).unwrap().round, 90);
        assert_eq!(trace.round(99).unwrap().round, 99);
        assert!(trace.round(100).is_none());
    }

    #[test]
    fn spoof_detection_requires_idle_channel() {
        let mut rec = record(0);
        rec.adversary = vec![(ChannelId(0), Emission::Spoof(9))];
        // Honest node transmits on ch0 too => not a delivered spoof.
        assert!(!rec.spoof_delivered(ChannelId(0)));

        let rec2: RoundRecord<u32> = RoundRecord {
            round: 0,
            transmissions: vec![],
            listeners: vec![(NodeId(1), ChannelId(1))],
            adversary: vec![(ChannelId(1), Emission::Spoof(9))],
            delivered: vec![None, Some(9)],
        };
        assert!(rec2.spoof_delivered(ChannelId(1)));
    }

    #[test]
    fn busy_channels_dedup_sorted() {
        let rec: RoundRecord<u32> = RoundRecord {
            round: 0,
            transmissions: vec![
                (NodeId(0), ChannelId(2), 1),
                (NodeId(1), ChannelId(0), 2),
                (NodeId(2), ChannelId(2), 3),
            ],
            listeners: vec![],
            adversary: vec![],
            delivered: vec![None, None, None],
        };
        assert_eq!(rec.busy_channels(), vec![ChannelId(0), ChannelId(2)]);
    }
}
