//! Execution traces: the complete, per-round record of everything that
//! happened on the air.
//!
//! Traces serve three masters:
//! * the **adversary**, which (per the model) learns all completed rounds;
//! * **tests**, which assert invariants over executions;
//! * **experiments**, which mine traces for statistics.

use std::collections::VecDeque;

use crate::adversary::Emission;
use crate::node::{ChannelId, NodeId};

/// How much history a [`Trace`] retains.
///
/// Long experiments (the group-key setup runs for `Θ(n·t³·log n)` rounds)
/// would otherwise accumulate gigabytes of per-round records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceRetention {
    /// Keep every round (default; right for tests and short runs).
    #[default]
    All,
    /// Keep only the most recent `k` rounds; older records are dropped but
    /// aggregate statistics remain exact.
    LastRounds(usize),
    /// Keep no per-round records at all. The engine then skips building
    /// records entirely — the allocation-free hot path for multi-trial
    /// experiment sweeps. Aggregate [`Stats`](crate::Stats) remain exact,
    /// but adversaries that mine the trace see an empty history.
    None,
}

impl TraceRetention {
    /// `true` if this policy stores per-round records at all.
    pub fn keeps_records(&self) -> bool {
        !matches!(self, TraceRetention::None)
    }
}

/// Everything that happened in one round, in struct-of-arrays layout.
///
/// Every vector is sized by *activity* — the number of transmitters,
/// listeners, adversary emissions, and delivered frames that round —
/// never by the channel count or the node population. In particular the
/// delivered set is **sparse**: only channels that actually delivered a
/// frame appear, sorted ascending by channel (so a record of a quiet
/// round over a million idle channels is a handful of empty vectors).
/// [`RoundRecord::delivered_dense`] reconstructs the dense per-channel
/// view on demand.
///
/// Invariants (upheld by the engine and [`RoundRecord::from_parts`];
/// consumers constructing records by hand must uphold them too):
/// `tx_nodes` / `tx_channels` / `tx_frames` are parallel and grouped by
/// channel (ascending channel, node order within a channel);
/// `listener_nodes` / `listener_channels` are parallel, in node order;
/// `adv_channels` / `adv_emissions` are parallel, in the adversary's
/// emission order; `delivered_channels` / `delivered_frames` are
/// parallel with `delivered_channels` strictly ascending.
#[derive(PartialEq, Eq, Debug)]
pub struct RoundRecord<M> {
    /// Round number (0-based).
    pub round: u64,
    /// Number of channels in the round — the dense width
    /// [`RoundRecord::delivered_dense`] reconstructs.
    pub channels: usize,
    /// Honest transmitters, grouped by channel.
    pub tx_nodes: Vec<NodeId>,
    /// Channel of each honest transmission (parallel to `tx_nodes`).
    pub tx_channels: Vec<ChannelId>,
    /// Frame of each honest transmission (parallel to `tx_nodes`).
    pub tx_frames: Vec<M>,
    /// Honest listeners, in node order.
    pub listener_nodes: Vec<NodeId>,
    /// Channel each listener tuned to (parallel to `listener_nodes`).
    pub listener_channels: Vec<ChannelId>,
    /// Channels the adversary emitted on, in emission order.
    pub adv_channels: Vec<ChannelId>,
    /// The adversary's emissions (parallel to `adv_channels`).
    pub adv_emissions: Vec<Emission<M>>,
    /// Channels on which a frame was delivered, strictly ascending.
    pub delivered_channels: Vec<ChannelId>,
    /// The delivered frames (parallel to `delivered_channels`).
    pub delivered_frames: Vec<M>,
    /// Listeners whose reception **diverged** from their channel's wire
    /// outcome — only populated by per-listener channel models (lossy,
    /// geometric); always empty under the ideal model, so pre-model
    /// records and trace lines are unchanged. Ordered by (channel
    /// ascending, node ascending).
    pub reception_nodes: Vec<NodeId>,
    /// What each diverging listener heard (`None` = nothing; parallel to
    /// `reception_nodes`).
    pub reception_frames: Vec<Option<M>>,
}

/// Hand-rolled so that [`Clone::clone_from`] reuses the destination's
/// vector capacities field by field — the engine's record arena and
/// [`Trace::push_ref`]'s bounded-window recycling depend on it to keep
/// the retention-on round loop allocation-free at steady state (a derived
/// `Clone` would fall back to allocate-and-drop).
impl<M: Clone> Clone for RoundRecord<M> {
    fn clone(&self) -> Self {
        RoundRecord {
            round: self.round,
            channels: self.channels,
            tx_nodes: self.tx_nodes.clone(),
            tx_channels: self.tx_channels.clone(),
            tx_frames: self.tx_frames.clone(),
            listener_nodes: self.listener_nodes.clone(),
            listener_channels: self.listener_channels.clone(),
            adv_channels: self.adv_channels.clone(),
            adv_emissions: self.adv_emissions.clone(),
            delivered_channels: self.delivered_channels.clone(),
            delivered_frames: self.delivered_frames.clone(),
            reception_nodes: self.reception_nodes.clone(),
            reception_frames: self.reception_frames.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.round = source.round;
        self.channels = source.channels;
        self.tx_nodes.clone_from(&source.tx_nodes);
        self.tx_channels.clone_from(&source.tx_channels);
        self.tx_frames.clone_from(&source.tx_frames);
        self.listener_nodes.clone_from(&source.listener_nodes);
        self.listener_channels.clone_from(&source.listener_channels);
        self.adv_channels.clone_from(&source.adv_channels);
        self.adv_emissions.clone_from(&source.adv_emissions);
        self.delivered_channels
            .clone_from(&source.delivered_channels);
        self.delivered_frames.clone_from(&source.delivered_frames);
        self.reception_nodes.clone_from(&source.reception_nodes);
        self.reception_frames.clone_from(&source.reception_frames);
    }
}

impl<M> Default for RoundRecord<M> {
    fn default() -> Self {
        RoundRecord::empty()
    }
}

impl<M> RoundRecord<M> {
    /// An all-empty record of round 0 over zero channels — the warm-up
    /// state of the engine's record arena.
    pub fn empty() -> Self {
        RoundRecord {
            round: 0,
            channels: 0,
            tx_nodes: Vec::new(),
            tx_channels: Vec::new(),
            tx_frames: Vec::new(),
            listener_nodes: Vec::new(),
            listener_channels: Vec::new(),
            adv_channels: Vec::new(),
            adv_emissions: Vec::new(),
            delivered_channels: Vec::new(),
            delivered_frames: Vec::new(),
            reception_nodes: Vec::new(),
            reception_frames: Vec::new(),
        }
    }

    /// Build a record from the dense array-of-structs shape: a
    /// transmission list, a listener list, the adversary's emission list,
    /// and a per-channel `Option<M>` delivery vector (index = channel,
    /// length = channel count). The convenient constructor for tests and
    /// reference implementations; the engine builds SoA fields directly.
    pub fn from_parts(
        round: u64,
        transmissions: Vec<(NodeId, ChannelId, M)>,
        listeners: Vec<(NodeId, ChannelId)>,
        adversary: Vec<(ChannelId, Emission<M>)>,
        delivered: Vec<Option<M>>,
    ) -> Self {
        let mut record = RoundRecord::empty();
        record.round = round;
        record.channels = delivered.len();
        for (node, channel, frame) in transmissions {
            record.tx_nodes.push(node);
            record.tx_channels.push(channel);
            record.tx_frames.push(frame);
        }
        for (node, channel) in listeners {
            record.listener_nodes.push(node);
            record.listener_channels.push(channel);
        }
        for (channel, emission) in adversary {
            record.adv_channels.push(channel);
            record.adv_emissions.push(emission);
        }
        for (ch, frame) in delivered.into_iter().enumerate() {
            if let Some(frame) = frame {
                record.delivered_channels.push(ChannelId(ch));
                record.delivered_frames.push(frame);
            }
        }
        record
    }

    /// Honest transmissions `(node, channel, frame)`, grouped by channel.
    pub fn transmissions(&self) -> impl Iterator<Item = (NodeId, ChannelId, &M)> + '_ {
        self.tx_nodes
            .iter()
            .zip(&self.tx_channels)
            .zip(&self.tx_frames)
            .map(|((&node, &channel), frame)| (node, channel, frame))
    }

    /// Honest listeners `(node, channel)`, in node order.
    pub fn listeners(&self) -> impl Iterator<Item = (NodeId, ChannelId)> + '_ {
        self.listener_nodes
            .iter()
            .zip(&self.listener_channels)
            .map(|(&node, &channel)| (node, channel))
    }

    /// The adversary's emissions `(channel, emission)` this round.
    pub fn adversary(&self) -> impl Iterator<Item = (ChannelId, &Emission<M>)> + '_ {
        self.adv_channels
            .iter()
            .zip(&self.adv_emissions)
            .map(|(&channel, emission)| (channel, emission))
    }

    /// The diverging receptions `(node, heard)` — listeners whose
    /// reception differed from their channel's wire outcome (per-listener
    /// channel models only; empty under the ideal model).
    pub fn receptions(&self) -> impl Iterator<Item = (NodeId, Option<&M>)> + '_ {
        self.reception_nodes
            .iter()
            .zip(&self.reception_frames)
            .map(|(&node, frame)| (node, frame.as_ref()))
    }

    /// The frame delivered on `channel`, if any — `O(log a)` in the
    /// number of *delivering* channels, independent of the channel count.
    pub fn delivered_on(&self, channel: ChannelId) -> Option<&M> {
        self.delivered_channels
            .binary_search(&channel)
            .ok()
            .map(|i| &self.delivered_frames[i])
    }

    /// The dense per-channel delivery view (`None` = silence/collision),
    /// reconstructed from the sparse delivered set by a two-pointer walk
    /// over all [`RoundRecord::channels`] channels.
    pub fn delivered_dense(&self) -> impl Iterator<Item = Option<&M>> + '_ {
        let mut next = 0usize;
        (0..self.channels).map(move |ch| {
            if self
                .delivered_channels
                .get(next)
                .is_some_and(|c| c.index() == ch)
            {
                let frame = &self.delivered_frames[next];
                next += 1;
                Some(frame)
            } else {
                None
            }
        })
    }

    /// Channels on which at least one honest node transmitted.
    pub fn busy_channels(&self) -> Vec<ChannelId> {
        let mut chans = self.tx_channels.clone();
        chans.sort_unstable();
        chans.dedup();
        chans
    }

    /// `true` if the adversary delivered a spoofed frame on `channel` —
    /// i.e. it spoofed there and no honest node transmitted on it.
    pub fn spoof_delivered(&self, channel: ChannelId) -> bool {
        let adversary_spoofed = self.adversary().any(|(c, e)| c == channel && e.is_spoof());
        let honest_busy = self.tx_channels.contains(&channel);
        adversary_spoofed && !honest_busy && self.delivered_on(channel).is_some()
    }
}

/// The record of an execution: an ordered collection of [`RoundRecord`]s
/// (subject to [`TraceRetention`]).
#[derive(Clone, Debug)]
pub struct Trace<M> {
    retention: TraceRetention,
    records: VecDeque<RoundRecord<M>>,
    completed_rounds: u64,
}

impl<M> Trace<M> {
    /// An empty trace with the given retention policy.
    pub fn new(retention: TraceRetention) -> Self {
        Trace {
            retention,
            records: VecDeque::new(),
            completed_rounds: 0,
        }
    }

    /// Total number of completed rounds (independent of retention).
    pub fn completed_rounds(&self) -> u64 {
        self.completed_rounds
    }

    /// The retention policy this trace applies on [`Trace::push`].
    pub fn retention(&self) -> TraceRetention {
        self.retention
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &RoundRecord<M>> {
        self.records.iter()
    }

    /// The most recent retained record, if any.
    pub fn last(&self) -> Option<&RoundRecord<M>> {
        self.records.back()
    }

    /// The record for round `round`, if still retained.
    pub fn round(&self, round: u64) -> Option<&RoundRecord<M>> {
        // Records are contiguous, so index arithmetic suffices.
        let first = self.records.front()?.round;
        if round < first {
            return None;
        }
        self.records.get((round - first) as usize)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append the record of the next round, applying the retention
    /// policy. Records must arrive in round order (starting at the
    /// current [`Trace::completed_rounds`]); custom
    /// [`TraceSink`](crate::TraceSink) implementations use this to
    /// maintain their retained history.
    pub fn push(&mut self, record: RoundRecord<M>) {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        self.completed_rounds += 1;
        match self.retention {
            TraceRetention::None => {}
            TraceRetention::All => self.records.push_back(record),
            TraceRetention::LastRounds(k) => {
                self.records.push_back(record);
                while self.records.len() > k {
                    self.records.pop_front();
                }
            }
        }
    }

    /// Append the record of the next round *by reference*, applying the
    /// retention policy — the arena-friendly sibling of [`Trace::push`]
    /// for sinks that receive `&RoundRecord` from the engine's record
    /// arena.
    ///
    /// Under [`TraceRetention::LastRounds`] at capacity, the oldest
    /// retained record is **recycled**: popped, overwritten in place via
    /// [`Clone::clone_from`] (which reuses its vector capacities), and
    /// pushed back — so a warm bounded window retains records without
    /// allocating, as the counting-allocator test in `tests/zero_alloc.rs`
    /// verifies.
    pub fn push_ref(&mut self, record: &RoundRecord<M>)
    where
        M: Clone,
    {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        self.completed_rounds += 1;
        match self.retention {
            TraceRetention::None => {}
            TraceRetention::All => self.records.push_back(record.clone()),
            TraceRetention::LastRounds(0) => {}
            TraceRetention::LastRounds(k) => {
                if self.records.len() >= k {
                    let mut recycled = self.records.pop_front().expect("len >= k >= 1");
                    while self.records.len() >= k {
                        self.records.pop_front();
                    }
                    recycled.clone_from(record);
                    self.records.push_back(recycled);
                } else {
                    self.records.push_back(record.clone());
                }
            }
        }
    }

    /// Append the record of the next round by **swap**: the retained copy
    /// takes `record`'s buffers wholesale, and `record` gets the evicted
    /// record's (equally warm) buffers back in exchange.
    ///
    /// This is the zero-copy sibling of [`Trace::push_ref`] for the
    /// engine's record arena: under [`TraceRetention::LastRounds`] at
    /// capacity, retaining a round costs two `memswap`s of vector
    /// headers — no element copies at all — and the arena keeps
    /// warm-capacity buffers to rebuild into next round. Policies that
    /// cannot hand buffers back ([`TraceRetention::All`] must keep
    /// growing) fall back to cloning, leaving `record` untouched.
    // detlint: deny-alloc(start) trace retention steady state (push_swap at capacity / note_round)
    pub fn push_swap(&mut self, record: &mut RoundRecord<M>)
    where
        M: Clone,
    {
        debug_assert_eq!(record.round, self.completed_rounds, "trace out of order");
        match self.retention {
            TraceRetention::LastRounds(k) if k > 0 && self.records.len() >= k => {
                self.completed_rounds += 1;
                let mut recycled = self.records.pop_front().expect("len >= k >= 1");
                while self.records.len() >= k {
                    self.records.pop_front();
                }
                std::mem::swap(&mut recycled, record);
                self.records.push_back(recycled);
            }
            // A window still filling (or All retention) clones via
            // push_ref — legitimately allocating, outside this region's
            // steady-state claim.
            _ => self.push_ref(record),
        }
    }

    /// Count a completed round without storing a record (the
    /// [`TraceRetention::None`] fast path — the engine never builds the
    /// record in the first place).
    pub fn note_round(&mut self) {
        self.completed_rounds += 1;
    }
    // detlint: deny-alloc(end)
}

impl<M> Default for Trace<M> {
    fn default() -> Self {
        Trace::new(TraceRetention::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64) -> RoundRecord<u32> {
        RoundRecord::from_parts(
            round,
            vec![(NodeId(0), ChannelId(0), round as u32)],
            vec![(NodeId(1), ChannelId(0))],
            vec![],
            vec![Some(round as u32), None],
        )
    }

    #[test]
    fn retains_all_by_default() {
        let mut trace = Trace::default();
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.completed_rounds(), 100);
        assert_eq!(trace.round(57).unwrap().round, 57);
    }

    #[test]
    fn bounded_retention_drops_oldest() {
        let mut trace = Trace::new(TraceRetention::LastRounds(10));
        for r in 0..100 {
            trace.push(record(r));
        }
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.completed_rounds(), 100);
        assert!(trace.round(89).is_none());
        assert_eq!(trace.round(90).unwrap().round, 90);
        assert_eq!(trace.round(99).unwrap().round, 99);
        assert!(trace.round(100).is_none());
    }

    #[test]
    fn push_ref_matches_push_across_retentions() {
        for retention in [
            TraceRetention::All,
            TraceRetention::LastRounds(0),
            TraceRetention::LastRounds(1),
            TraceRetention::LastRounds(10),
            TraceRetention::None,
        ] {
            let mut owned = Trace::new(retention);
            let mut by_ref = Trace::new(retention);
            for r in 0..40 {
                owned.push(record(r));
                by_ref.push_ref(&record(r));
            }
            assert_eq!(owned.completed_rounds(), by_ref.completed_rounds());
            assert_eq!(owned.len(), by_ref.len(), "{retention:?}");
            assert!(owned.records().zip(by_ref.records()).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn push_swap_matches_push_and_returns_warm_buffers() {
        for retention in [
            TraceRetention::All,
            TraceRetention::LastRounds(0),
            TraceRetention::LastRounds(1),
            TraceRetention::LastRounds(10),
            TraceRetention::None,
        ] {
            let mut owned = Trace::new(retention);
            let mut by_swap = Trace::new(retention);
            let mut arena = record(0);
            for r in 0..40 {
                owned.push(record(r));
                // Rebuild the "arena" record in place, like the engine.
                arena.clone_from(&record(r));
                by_swap.push_swap(&mut arena);
                // Whatever buffers came back, the arena record must be a
                // valid RoundRecord (the engine clears + refills next
                // round); at window capacity they are the evicted
                // round's, otherwise unchanged.
                if let TraceRetention::LastRounds(k) = retention {
                    if k > 0 && r as usize >= k {
                        assert_eq!(arena.round, r - k as u64, "{retention:?}");
                    }
                }
            }
            assert_eq!(owned.completed_rounds(), by_swap.completed_rounds());
            assert_eq!(owned.len(), by_swap.len(), "{retention:?}");
            assert!(owned.records().zip(by_swap.records()).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut dst = record(0);
        dst.tx_nodes.reserve(64);
        let src = record(7);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn from_parts_accessors_roundtrip() {
        let rec: RoundRecord<u32> = RoundRecord::from_parts(
            3,
            vec![(NodeId(4), ChannelId(1), 10), (NodeId(7), ChannelId(2), 20)],
            vec![(NodeId(0), ChannelId(2)), (NodeId(5), ChannelId(0))],
            vec![(ChannelId(0), Emission::Noise)],
            vec![None, Some(10), Some(20), None],
        );
        assert_eq!(rec.channels, 4);
        assert_eq!(
            rec.transmissions().collect::<Vec<_>>(),
            vec![
                (NodeId(4), ChannelId(1), &10),
                (NodeId(7), ChannelId(2), &20)
            ]
        );
        assert_eq!(
            rec.listeners().collect::<Vec<_>>(),
            vec![(NodeId(0), ChannelId(2)), (NodeId(5), ChannelId(0))]
        );
        assert_eq!(
            rec.adversary().collect::<Vec<_>>(),
            vec![(ChannelId(0), &Emission::Noise)]
        );
        assert_eq!(rec.delivered_on(ChannelId(0)), None);
        assert_eq!(rec.delivered_on(ChannelId(1)), Some(&10));
        assert_eq!(rec.delivered_on(ChannelId(2)), Some(&20));
        assert_eq!(rec.delivered_on(ChannelId(3)), None);
        assert_eq!(
            rec.delivered_dense().collect::<Vec<_>>(),
            vec![None, Some(&10), Some(&20), None]
        );
    }

    #[test]
    fn spoof_detection_requires_idle_channel() {
        // Honest node transmits on ch0 too => not a delivered spoof.
        let rec: RoundRecord<u32> = RoundRecord::from_parts(
            0,
            vec![(NodeId(0), ChannelId(0), 0)],
            vec![(NodeId(1), ChannelId(0))],
            vec![(ChannelId(0), Emission::Spoof(9))],
            vec![Some(0), None],
        );
        assert!(!rec.spoof_delivered(ChannelId(0)));

        let rec2: RoundRecord<u32> = RoundRecord::from_parts(
            0,
            vec![],
            vec![(NodeId(1), ChannelId(1))],
            vec![(ChannelId(1), Emission::Spoof(9))],
            vec![None, Some(9)],
        );
        assert!(rec2.spoof_delivered(ChannelId(1)));
    }

    #[test]
    fn busy_channels_dedup_sorted() {
        let rec: RoundRecord<u32> = RoundRecord::from_parts(
            0,
            vec![
                (NodeId(0), ChannelId(2), 1),
                (NodeId(1), ChannelId(0), 2),
                (NodeId(2), ChannelId(2), 3),
            ],
            vec![],
            vec![],
            vec![None, None, None],
        );
        assert_eq!(rec.busy_channels(), vec![ChannelId(0), ChannelId(2)]);
    }
}
