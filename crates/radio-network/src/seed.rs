//! Deterministic seed derivation, shared by the simulation driver (per-node
//! streams) and the experiment harness (per-trial streams).
//!
//! One base seed fans out into any number of statistically independent
//! streams: `derive(base, i)` for stream `i`. The mix is SplitMix64 over
//! the base xored with a golden-ratio multiple of the stream index — the
//! standard recipe for decorrelating sequential stream ids, and the same
//! finalizer rand's `seed_from_u64` uses internally, so derived seeds feed
//! straight into `SmallRng::seed_from_u64`.

/// Derive the seed for `stream` from `base`.
///
/// Deterministic, and injective in `stream` for a fixed base (SplitMix64's
/// finalizer is a bijection of the xored input).
///
/// ```rust
/// use radio_network::seed::derive;
/// assert_eq!(derive(7, 3), derive(7, 3));
/// assert_ne!(derive(7, 3), derive(7, 4));
/// assert_ne!(derive(7, 3), derive(8, 3));
/// ```
#[must_use]
pub fn derive(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::derive;

    #[test]
    fn distinct_streams_distinct_seeds() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| derive(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn distinct_bases_distinct_seeds() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|b| derive(b, 7)).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
