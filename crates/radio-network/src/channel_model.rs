//! Pluggable channel models: how concurrent transmissions on one channel
//! resolve into what listeners hear.
//!
//! The paper's model (and this crate's default) is the **ideal**
//! single-hop clique: exactly one transmitter delivers, anything else is
//! silence or an indistinguishable collision. Real radio is messier —
//! frames are lost, strong transmitters capture the receiver, geometry
//! decides who hears whom. A [`ChannelModel`] lifts that decision out of
//! the engine's inline match so experiments can chart where the paper's
//! guarantees bend:
//!
//! * [`ChannelModelSpec::Ideal`] — the paper's semantics, bit-identical
//!   to the pre-trait engine (pinned by `tests/arena_equivalence.rs`);
//! * [`ChannelModelSpec::Lossy`] — per-listener Bernoulli frame drop;
//! * [`ChannelModelSpec::Capture`] — the strongest transmitter wins a
//!   contended channel instead of colliding;
//! * [`ChannelModelSpec::Geometric`] — nodes in a plane; only in-radius
//!   listeners hear, and out-of-radius transmitters don't collide.
//!
//! ## Determinism
//!
//! Models draw **no** sequential randomness. Every stochastic decision is
//! a pure function of `(model seed, round, channel, node)` through
//! [`crate::seed::derive`], so outcomes are independent of evaluation
//! order: the dense and sparse engines, any runner thread count, and a
//! later replay all see byte-identical rounds.
//!
//! ## Two levels of divergence
//!
//! A model participates at two points. [`ChannelModel::resolve`] decides
//! the **wire outcome** of a channel (one verdict per channel per round —
//! what the trace's `delivered` column records). When per-listener truth
//! can differ from the wire outcome ([`ChannelModel::diverges`]),
//! [`ChannelModel::listener_outcome`] is additionally consulted per
//! listener; divergent receptions are recorded in the trace's
//! `receptions` column.

use std::fmt;

use crate::node::{ChannelId, NodeId};
use crate::seed;

/// What kind of emission the adversary placed on a channel (the frame
/// itself stays in the adversary action; models only need the kind).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmissionKind {
    /// Jamming noise: collides, but delivers nothing by itself.
    Noise,
    /// A forged frame that delivers if the channel is otherwise clear.
    Spoof,
}

/// The honest transmitters active on one channel this round — a borrowed
/// view over the engine's channel-grouped arena, iterable without
/// allocation.
#[derive(Clone, Copy, Debug)]
pub struct TxSpan<'a> {
    /// The channel's slice of the arena's channel-grouped permutation.
    span: &'a [u32],
    /// Node id per gathered transmission (indexed through `span`).
    tx_node: &'a [u32],
}

impl<'a> TxSpan<'a> {
    /// Build a span over `span` (indices into `tx_node`).
    pub(crate) fn new(span: &'a [u32], tx_node: &'a [u32]) -> Self {
        TxSpan { span, tx_node }
    }

    /// Number of honest transmitters on the channel.
    pub fn len(&self) -> usize {
        self.span.len()
    }

    /// `true` when no honest node transmitted on the channel.
    pub fn is_empty(&self) -> bool {
        self.span.is_empty()
    }

    /// The `i`-th transmitter's node id (transmitters are in node order
    /// within a channel).
    pub fn node(&self, i: usize) -> NodeId {
        NodeId(self.tx_node[self.span[i] as usize] as usize)
    }

    /// The transmitting nodes, in node order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        let tx_node = self.tx_node;
        self.span
            .iter()
            .map(move |&tx| NodeId(tx_node[tx as usize] as usize))
    }

    /// The `i`-th transmitter's index into the engine's transmission
    /// arrays (for frame lookups the engine performs on the model's
    /// behalf).
    pub(crate) fn tx(&self, i: usize) -> u32 {
        self.span[i]
    }
}

/// Everything a model may condition one channel's resolution on.
///
/// The context is allocation-free: spans borrow the engine's arena, and
/// randomness is derived on demand through [`ChannelContext::draw`].
#[derive(Clone, Copy, Debug)]
pub struct ChannelContext<'a> {
    /// The model seed (derived once per run; see
    /// [`Network::seed_channel_model`](crate::Network::seed_channel_model)).
    pub seed: u64,
    /// The round being resolved.
    pub round: u64,
    /// The channel being resolved.
    pub channel: ChannelId,
    /// The honest transmitters on the channel, in node order.
    pub transmitters: TxSpan<'a>,
    /// The adversary's emission on the channel, if any.
    pub adversary: Option<EmissionKind>,
}

impl ChannelContext<'_> {
    /// The deterministic random stream of this `(seed, round, channel)`
    /// triple. All model randomness flows from here through
    /// [`crate::seed::derive`] — never from ambient RNG state — so
    /// outcomes are independent of evaluation order.
    pub fn stream(&self) -> u64 {
        seed::derive(
            seed::derive(self.seed, self.round),
            self.channel.index() as u64,
        )
    }

    /// A per-`key` draw from this context's stream (`key` is typically a
    /// node id). Pure: the same `(seed, round, channel, key)` always
    /// yields the same value.
    pub fn draw(&self, key: u64) -> u64 {
        seed::derive(self.stream(), key)
    }
}

/// The wire outcome of one channel, as decided by a [`ChannelModel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelVerdict {
    /// Apply the paper's ideal semantics: one honest transmitter
    /// delivers, a lone spoof delivers, anything else is
    /// silence/noise/collision. The only verdict [`ChannelModelSpec::Ideal`]
    /// ever returns.
    Classic,
    /// Deliver the frame of the `idx`-th honest transmitter in the
    /// channel's span (0-based, node order) despite any contention.
    DeliverHonest {
        /// Index into [`ChannelContext::transmitters`].
        idx: usize,
    },
    /// Deliver the adversary's spoofed frame despite any contention
    /// (ignored — resolved as [`ChannelVerdict::Classic`] — unless the
    /// adversary actually spoofed the channel).
    DeliverAdversary,
    /// Force a collision: nothing is delivered.
    Collision,
}

/// What one listener hears on a channel, when the model's per-listener
/// truth can diverge from the wire outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ListenerOutcome {
    /// Defer to the channel's wire outcome (hear whatever it delivered).
    Channel,
    /// Hear nothing, regardless of the wire outcome.
    Nothing,
    /// Hear the `idx`-th honest transmitter in the channel's span, even
    /// if the wire outcome was a collision.
    Honest {
        /// Index into [`ChannelContext::transmitters`].
        idx: usize,
    },
    /// Hear the adversary's spoofed frame (resolves to silence if the
    /// adversary's emission was noise, or absent).
    Adversary,
}

/// A channel model: the pluggable rule turning per-channel activity into
/// outcomes.
///
/// Implementations must be pure functions of the [`ChannelContext`] (and
/// the listener id): no interior mutability, no ambient randomness —
/// derive every stochastic choice via [`ChannelContext::draw`]. The
/// engine may evaluate a channel any number of times per round (stats,
/// trace, and reception dispatch each consult the model) and in any
/// order.
pub trait ChannelModel: fmt::Debug + Send {
    /// `true` if per-listener outcomes can differ from the wire outcome,
    /// in which case the engine consults
    /// [`ChannelModel::listener_outcome`] per listener (and records
    /// divergent receptions in the trace). Models returning `false` keep
    /// the engine on the exact ideal listener fast path.
    fn diverges(&self) -> bool {
        false
    }

    /// Decide the wire outcome of one channel.
    fn resolve(&self, _ctx: &ChannelContext<'_>) -> ChannelVerdict {
        ChannelVerdict::Classic
    }

    /// Decide what `listener` hears on the context's channel. Only
    /// consulted when [`ChannelModel::diverges`] is `true`.
    fn listener_outcome(&self, _ctx: &ChannelContext<'_>, _listener: NodeId) -> ListenerOutcome {
        ListenerOutcome::Channel
    }
}

/// The paper's ideal channel: [`ChannelVerdict::Classic`] everywhere.
#[derive(Clone, Copy, Debug, Default)]
struct IdealModel;

impl ChannelModel for IdealModel {}

/// Per-listener Bernoulli frame drop on otherwise-deliverable channels.
#[derive(Clone, Copy, Debug)]
struct LossyModel {
    /// Loss probability in parts per million.
    p_loss_ppm: u32,
}

impl ChannelModel for LossyModel {
    fn diverges(&self) -> bool {
        true
    }

    fn listener_outcome(&self, ctx: &ChannelContext<'_>, listener: NodeId) -> ListenerOutcome {
        // Only deliverable channels (ideal semantics) can lose a frame;
        // silence and collisions stay silence and collisions.
        let deliverable = (ctx.transmitters.len() == 1 && ctx.adversary.is_none())
            || (ctx.transmitters.is_empty() && ctx.adversary == Some(EmissionKind::Spoof));
        if !deliverable {
            return ListenerOutcome::Channel;
        }
        if ctx.draw(listener.0 as u64) % 1_000_000 < u64::from(self.p_loss_ppm) {
            ListenerOutcome::Nothing
        } else {
            ListenerOutcome::Channel
        }
    }
}

/// Capture effect: on a contended channel, the strongest transmitter
/// wins if its power margin over the runner-up reaches the threshold.
#[derive(Clone, Copy, Debug)]
struct CaptureModel {
    /// Minimal winning margin on the `0..1024` power scale.
    threshold: u32,
}

impl CaptureModel {
    /// Deterministic per-round power draw on a `0..1024` scale.
    fn power(ctx: &ChannelContext<'_>, key: u64) -> u64 {
        ctx.draw(key) % 1024
    }
}

impl ChannelModel for CaptureModel {
    fn resolve(&self, ctx: &ChannelContext<'_>) -> ChannelVerdict {
        /// The adversary's power-draw key (node ids can never reach it).
        const ADVERSARY_KEY: u64 = u64::MAX;
        let honest = ctx.transmitters.len();
        let total = honest + usize::from(ctx.adversary.is_some());
        if total <= 1 {
            return ChannelVerdict::Classic;
        }
        // Track the strongest participant and the runner-up power.
        // `None` in the winner slot means the adversary.
        let mut best: Option<(u64, Option<usize>)> = None;
        let mut second = 0u64;
        for i in 0..honest {
            let p = Self::power(ctx, ctx.transmitters.node(i).0 as u64);
            match best {
                Some((bp, _)) if p <= bp => second = second.max(p),
                Some((bp, _)) => {
                    second = second.max(bp);
                    best = Some((p, Some(i)));
                }
                None => best = Some((p, Some(i))),
            }
        }
        if ctx.adversary.is_some() {
            let p = Self::power(ctx, ADVERSARY_KEY);
            match best {
                Some((bp, _)) if p <= bp => second = second.max(p),
                Some((bp, _)) => {
                    second = second.max(bp);
                    best = Some((p, None));
                }
                None => best = Some((p, None)),
            }
        }
        let (best_power, winner) = best.expect("total > 1 participants");
        let margin = best_power - second;
        if margin == 0 || margin < u64::from(self.threshold) {
            return ChannelVerdict::Collision;
        }
        match winner {
            Some(idx) => ChannelVerdict::DeliverHonest { idx },
            None => match ctx.adversary {
                Some(EmissionKind::Spoof) => ChannelVerdict::DeliverAdversary,
                // Winning noise delivers nothing: the channel is jammed.
                _ => ChannelVerdict::Collision,
            },
        }
    }
}

/// In-plane geometry: a listener hears a transmitter iff their squared
/// distance is within `radius²`; transmitters out of earshot don't
/// collide at that listener.
#[derive(Clone, Debug)]
struct GeometricModel {
    /// Node positions, indexed by node id (missing nodes sit at the
    /// origin).
    positions: Vec<(i64, i64)>,
    /// Hearing radius.
    radius: u64,
}

impl GeometricModel {
    fn position(&self, node: NodeId) -> (i64, i64) {
        self.positions.get(node.0).copied().unwrap_or((0, 0))
    }

    fn in_range(&self, a: (i64, i64), b: (i64, i64)) -> bool {
        let dx = i128::from(a.0) - i128::from(b.0);
        let dy = i128::from(a.1) - i128::from(b.1);
        let r = i128::from(self.radius);
        dx * dx + dy * dy <= r * r
    }
}

impl ChannelModel for GeometricModel {
    fn diverges(&self) -> bool {
        true
    }

    fn listener_outcome(&self, ctx: &ChannelContext<'_>, listener: NodeId) -> ListenerOutcome {
        let at = self.position(listener);
        // The adversary is positionless: audible everywhere.
        let mut audible = usize::from(ctx.adversary.is_some());
        let mut lone_honest: Option<usize> = None;
        for i in 0..ctx.transmitters.len() {
            if self.in_range(self.position(ctx.transmitters.node(i)), at) {
                audible += 1;
                if audible > 1 {
                    return ListenerOutcome::Nothing;
                }
                lone_honest = Some(i);
            }
        }
        match (audible, lone_honest, ctx.adversary) {
            (1, Some(idx), None) => ListenerOutcome::Honest { idx },
            (1, None, Some(EmissionKind::Spoof)) => ListenerOutcome::Adversary,
            // Lone noise, or nothing audible at all: silence.
            _ => ListenerOutcome::Nothing,
        }
    }
}

/// A serializable, comparable description of a channel model — what
/// configs, scenario specs, and trace headers carry; build the live model
/// with [`ChannelModelSpec::build`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ChannelModelSpec {
    /// The paper's ideal channel (the default; bit-identical to the
    /// pre-trait engine).
    #[default]
    Ideal,
    /// Per-listener Bernoulli frame drop on deliverable channels.
    Lossy {
        /// Loss probability in parts per million (integer, so specs
        /// round-trip through JSON losslessly).
        p_loss_ppm: u32,
    },
    /// Strongest-transmitter capture on contended channels.
    Capture {
        /// Minimal winning power margin on the `0..1024` scale (a zero
        /// margin — a power tie — is always a collision, so `0` behaves
        /// like `1`; `1024` and above never capture).
        threshold: u32,
    },
    /// In-plane geometry with a hearing radius.
    Geometric {
        /// Node positions, indexed by node id (missing nodes sit at the
        /// origin).
        positions: Vec<(i64, i64)>,
        /// Hearing radius (inclusive, Euclidean).
        radius: u64,
    },
}

impl ChannelModelSpec {
    /// Instantiate the live model this spec describes.
    pub fn build(&self) -> Box<dyn ChannelModel> {
        match self {
            ChannelModelSpec::Ideal => Box::new(IdealModel),
            ChannelModelSpec::Lossy { p_loss_ppm } => Box::new(LossyModel {
                p_loss_ppm: *p_loss_ppm,
            }),
            ChannelModelSpec::Capture { threshold } => Box::new(CaptureModel {
                threshold: *threshold,
            }),
            ChannelModelSpec::Geometric { positions, radius } => Box::new(GeometricModel {
                positions: positions.clone(),
                radius: *radius,
            }),
        }
    }

    /// `true` for the default ideal model (specs omit it from JSON, so
    /// all pre-model files stay byte-identical).
    pub fn is_ideal(&self) -> bool {
        matches!(self, ChannelModelSpec::Ideal)
    }

    /// A short, filesystem-safe label (for scenario names and report
    /// rows).
    pub fn label(&self) -> String {
        match self {
            ChannelModelSpec::Ideal => "ideal".to_string(),
            ChannelModelSpec::Lossy { p_loss_ppm } => format!("lossy-p{p_loss_ppm}"),
            ChannelModelSpec::Capture { threshold } => format!("capture-t{threshold}"),
            ChannelModelSpec::Geometric { positions, radius } => {
                format!("geometric-r{radius}-n{}", positions.len())
            }
        }
    }

    /// The spec as a canonical JSON object (the inverse lives with the
    /// bench JSON parser; `secure_radio_bench::scenario` round-trips it).
    pub fn json(&self) -> String {
        match self {
            ChannelModelSpec::Ideal => "{\"kind\":\"ideal\"}".to_string(),
            ChannelModelSpec::Lossy { p_loss_ppm } => {
                format!("{{\"kind\":\"lossy\",\"p_loss_ppm\":{p_loss_ppm}}}")
            }
            ChannelModelSpec::Capture { threshold } => {
                format!("{{\"kind\":\"capture\",\"threshold\":{threshold}}}")
            }
            ChannelModelSpec::Geometric { positions, radius } => {
                use std::fmt::Write as _;
                let mut out = String::new();
                write!(
                    out,
                    "{{\"kind\":\"geometric\",\"radius\":{radius},\"positions\":["
                )
                .expect("write to String");
                for (i, (x, y)) in positions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write!(out, "[{x},{y}]").expect("write to String");
                }
                out.push_str("]}");
                out
            }
        }
    }

    /// The one-line trace-file header recording this model (see
    /// `docs/TRACE_FORMAT.md`); written by recording tools for non-ideal
    /// runs so replays rebuild the same channel semantics.
    pub fn header_line(&self) -> String {
        format!("{{\"channel_model\":{}}}", self.json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        span: &'a [u32],
        tx_node: &'a [u32],
        adv: Option<EmissionKind>,
    ) -> ChannelContext<'a> {
        ChannelContext {
            seed: 42,
            round: 3,
            channel: ChannelId(1),
            transmitters: TxSpan::new(span, tx_node),
            adversary: adv,
        }
    }

    #[test]
    fn ideal_is_always_classic() {
        let model = ChannelModelSpec::Ideal.build();
        assert!(!model.diverges());
        let c = ctx(&[0, 1], &[4, 7], Some(EmissionKind::Noise));
        assert_eq!(model.resolve(&c), ChannelVerdict::Classic);
        assert_eq!(
            model.listener_outcome(&c, NodeId(9)),
            ListenerOutcome::Channel
        );
    }

    #[test]
    fn lossy_zero_and_certain_loss_are_exact() {
        let never = ChannelModelSpec::Lossy { p_loss_ppm: 0 }.build();
        let always = ChannelModelSpec::Lossy {
            p_loss_ppm: 1_000_000,
        }
        .build();
        let c = ctx(&[0], &[4], None);
        for node in 0..64 {
            assert_eq!(
                never.listener_outcome(&c, NodeId(node)),
                ListenerOutcome::Channel
            );
            assert_eq!(
                always.listener_outcome(&c, NodeId(node)),
                ListenerOutcome::Nothing
            );
        }
        // Undeliverable channels (collision) are never touched by loss.
        let collided = ctx(&[0, 1], &[4, 7], None);
        assert_eq!(
            always.listener_outcome(&collided, NodeId(0)),
            ListenerOutcome::Channel
        );
    }

    #[test]
    fn lossy_is_a_pure_function_of_seed_round_channel_node() {
        let model = ChannelModelSpec::Lossy {
            p_loss_ppm: 500_000,
        }
        .build();
        let c = ctx(&[0], &[4], None);
        let first: Vec<ListenerOutcome> = (0..32)
            .map(|n| model.listener_outcome(&c, NodeId(n)))
            .collect();
        // Re-evaluation in any order yields the same outcomes.
        for n in (0..32).rev() {
            assert_eq!(model.listener_outcome(&c, NodeId(n)), first[n]);
        }
        // And both outcomes actually occur at p = 0.5.
        assert!(first.contains(&ListenerOutcome::Channel));
        assert!(first.contains(&ListenerOutcome::Nothing));
    }

    #[test]
    fn capture_uncontended_defers_to_classic() {
        let model = ChannelModelSpec::Capture { threshold: 1 }.build();
        assert_eq!(
            model.resolve(&ctx(&[0], &[4], None)),
            ChannelVerdict::Classic
        );
        assert_eq!(model.resolve(&ctx(&[], &[], None)), ChannelVerdict::Classic);
        assert_eq!(
            model.resolve(&ctx(&[], &[], Some(EmissionKind::Spoof))),
            ChannelVerdict::Classic
        );
    }

    #[test]
    fn capture_huge_threshold_always_collides_and_zero_acts_like_one() {
        let zero = ChannelModelSpec::Capture { threshold: 0 }.build();
        let one = ChannelModelSpec::Capture { threshold: 1 }.build();
        let huge = ChannelModelSpec::Capture { threshold: 1024 }.build();
        let span = [0u32, 1, 2];
        let nodes = [3u32, 5, 9];
        for round in 0..32u64 {
            let mut c = ctx(&span, &nodes, None);
            c.round = round;
            assert_eq!(huge.resolve(&c), ChannelVerdict::Collision, "round {round}");
            assert_eq!(zero.resolve(&c), one.resolve(&c), "round {round}");
        }
    }

    #[test]
    fn capture_with_low_threshold_delivers_the_strongest() {
        let model = ChannelModelSpec::Capture { threshold: 1 }.build();
        let span = [0u32, 1];
        let nodes = [3u32, 5];
        let mut wins = 0;
        for round in 0..64u64 {
            let mut c = ctx(&span, &nodes, None);
            c.round = round;
            match model.resolve(&c) {
                ChannelVerdict::DeliverHonest { idx } => {
                    assert!(idx < 2);
                    wins += 1;
                    // The winner really is the strongest draw.
                    let p0 = c.draw(3) % 1024;
                    let p1 = c.draw(5) % 1024;
                    assert_eq!(idx, usize::from(p1 > p0));
                }
                ChannelVerdict::Collision => {}
                other => panic!("unexpected verdict {other:?}"),
            }
        }
        assert!(
            wins > 32,
            "capture should win most contended rounds: {wins}"
        );
    }

    #[test]
    fn capture_adversary_can_win_with_spoof_but_noise_never_delivers() {
        let model = ChannelModelSpec::Capture { threshold: 1 }.build();
        let span = [0u32];
        let nodes = [3u32];
        let (mut spoof_wins, mut honest_wins) = (0, 0);
        for round in 0..128u64 {
            let mut spoofed = ctx(&span, &nodes, Some(EmissionKind::Spoof));
            spoofed.round = round;
            match model.resolve(&spoofed) {
                ChannelVerdict::DeliverAdversary => spoof_wins += 1,
                ChannelVerdict::DeliverHonest { idx: 0 } => honest_wins += 1,
                ChannelVerdict::Collision => {}
                other => panic!("unexpected verdict {other:?}"),
            }
            let mut noisy = ctx(&span, &nodes, Some(EmissionKind::Noise));
            noisy.round = round;
            assert!(
                !matches!(model.resolve(&noisy), ChannelVerdict::DeliverAdversary),
                "noise must never deliver"
            );
        }
        assert!(spoof_wins > 0 && honest_wins > 0);
    }

    #[test]
    fn geometric_range_and_interference_per_listener() {
        // Nodes 0,1,2 at x = 0, 10, 100; radius 15.
        let spec = ChannelModelSpec::Geometric {
            positions: vec![(0, 0), (10, 0), (100, 0)],
            radius: 15,
        };
        let model = spec.build();
        assert!(model.diverges());
        // Node 0 transmits alone: node 1 hears it, node 2 is out of range.
        let span = [0u32];
        let nodes = [0u32];
        let c = ctx(&span, &nodes, None);
        assert_eq!(
            model.listener_outcome(&c, NodeId(1)),
            ListenerOutcome::Honest { idx: 0 }
        );
        assert_eq!(
            model.listener_outcome(&c, NodeId(2)),
            ListenerOutcome::Nothing
        );
        // Nodes 0 and 2 transmit: node 1 only hears node 0 (no collision
        // from out-of-range node 2), a listener at the origin-distance of
        // both hears nothing.
        let span = [0u32, 1];
        let nodes = [0u32, 2];
        let c = ctx(&span, &nodes, None);
        assert_eq!(
            model.listener_outcome(&c, NodeId(1)),
            ListenerOutcome::Honest { idx: 0 }
        );
        // The positionless adversary is audible everywhere and collides.
        let c = ctx(&span, &nodes, Some(EmissionKind::Noise));
        assert_eq!(
            model.listener_outcome(&c, NodeId(1)),
            ListenerOutcome::Nothing
        );
        // A lone spoof reaches everyone.
        let c = ctx(&[], &[], Some(EmissionKind::Spoof));
        assert_eq!(
            model.listener_outcome(&c, NodeId(2)),
            ListenerOutcome::Adversary
        );
        // A lone noise emission sounds like silence.
        let c = ctx(&[], &[], Some(EmissionKind::Noise));
        assert_eq!(
            model.listener_outcome(&c, NodeId(2)),
            ListenerOutcome::Nothing
        );
    }

    #[test]
    fn spec_json_and_labels_are_stable() {
        assert_eq!(ChannelModelSpec::Ideal.json(), "{\"kind\":\"ideal\"}");
        assert_eq!(ChannelModelSpec::Ideal.label(), "ideal");
        assert!(ChannelModelSpec::Ideal.is_ideal());
        let lossy = ChannelModelSpec::Lossy { p_loss_ppm: 50_000 };
        assert_eq!(lossy.json(), "{\"kind\":\"lossy\",\"p_loss_ppm\":50000}");
        assert_eq!(lossy.label(), "lossy-p50000");
        assert!(!lossy.is_ideal());
        let capture = ChannelModelSpec::Capture { threshold: 128 };
        assert_eq!(capture.json(), "{\"kind\":\"capture\",\"threshold\":128}");
        assert_eq!(capture.label(), "capture-t128");
        let geo = ChannelModelSpec::Geometric {
            positions: vec![(0, 0), (2, -3)],
            radius: 4,
        };
        assert_eq!(
            geo.json(),
            "{\"kind\":\"geometric\",\"radius\":4,\"positions\":[[0,0],[2,-3]]}"
        );
        assert_eq!(geo.label(), "geometric-r4-n2");
        assert_eq!(
            geo.header_line(),
            "{\"channel_model\":{\"kind\":\"geometric\",\"radius\":4,\"positions\":[[0,0],[2,-3]]}}"
        );
    }
}
