//! Node-facing types: identities, per-round actions, and the [`Protocol`]
//! state-machine trait implemented by honest nodes.

use std::fmt;

/// Identity of an honest node (`p_1 … p_n` in the paper, zero-indexed here).
///
/// A plain newtype over `usize` so protocol crates can use node ids as vector
/// indices without casts scattered around.
///
/// ```rust
/// use radio_network::NodeId;
/// let p = NodeId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index (usable directly as a `Vec` index).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// One of the `C` communication channels, zero-indexed.
///
/// ```rust
/// use radio_network::ChannelId;
/// let c = ChannelId(0);
/// assert_eq!(c.index(), 0);
/// assert_eq!(format!("{c}"), "ch0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ChannelId(pub usize);

impl ChannelId {
    /// The underlying index (usable directly as a `Vec` index).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<usize> for ChannelId {
    fn from(i: usize) -> Self {
        ChannelId(i)
    }
}

/// What a node does during one synchronous round.
///
/// The model of the paper (Section 3) allows a node to use a single channel
/// per round, either to transmit or to receive; it may also stay idle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action<M> {
    /// Broadcast `frame` on `channel`.
    Transmit {
        /// Channel the frame is broadcast on.
        channel: ChannelId,
        /// Payload broadcast this round.
        frame: M,
    },
    /// Tune to `channel` and receive whatever the channel resolves to.
    Listen {
        /// Channel tuned to.
        channel: ChannelId,
    },
    /// Do nothing this round.
    Sleep,
}

impl<M> Action<M> {
    /// The channel this action occupies, if any.
    pub fn channel(&self) -> Option<ChannelId> {
        match self {
            Action::Transmit { channel, .. } | Action::Listen { channel } => Some(*channel),
            Action::Sleep => None,
        }
    }

    /// `true` if this action is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit { .. })
    }

    /// `true` if this action is a listen.
    pub fn is_listen(&self) -> bool {
        matches!(self, Action::Listen { .. })
    }
}

/// What a listening node hears at the end of a round.
///
/// `frame == None` encodes *silence-or-collision*: per the model, a node
/// cannot distinguish an idle channel from a collided one.
///
/// The driver hands nodes a **borrowed** reception — `Reception<&M>`,
/// with the frame borrowed straight from the engine's
/// [`RoundView`](crate::RoundView) — so a node that only inspects the
/// frame (the common case: feedback witnesses, channel-escape checks)
/// costs no clone. Nodes that keep the frame call
/// [`Reception::cloned`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reception<M> {
    /// The channel the node was tuned to.
    pub channel: ChannelId,
    /// The received frame, or `None` on silence/collision.
    pub frame: Option<M>,
}

impl<M: Clone> Reception<&M> {
    /// Materialize an owned [`Reception`] from a borrowed one — for nodes
    /// that store what they heard beyond the end of the round.
    pub fn cloned(&self) -> Reception<M> {
        Reception {
            channel: self.channel,
            frame: self.frame.cloned(),
        }
    }
}

/// The wake round advertised by a node that never needs to be visited
/// again (see [`Protocol::next_wake`]).
pub const NEVER: u64 = u64::MAX;

/// State machine implemented by an honest protocol node.
///
/// The [`Simulation`](crate::Simulation) driver calls [`Protocol::begin_round`]
/// on every **awake** node (collecting actions), resolves the round, then
/// calls [`Protocol::end_round`] with the node's reception (present only when
/// the node listened). A node must base decisions solely on its own state —
/// that is what makes agreement properties of the paper's protocols
/// meaningful.
///
/// By default every node is awake every round. A node whose protocol
/// genuinely sleeps for long stretches (epoch scripts, tree-feedback
/// leaves) overrides [`Protocol::next_wake`] to skip the idle rounds
/// entirely — the driver then never calls `begin_round`/`end_round` while
/// it sleeps, which is what makes round cost O(awake) instead of O(n).
pub trait Protocol {
    /// The frame type broadcast over the air.
    type Msg: Clone;

    /// Called once by the driver before round 0, with a seed derived
    /// deterministically from the simulation seed and this node's index
    /// (see [`seed::derive`](crate::seed::derive)).
    ///
    /// Nodes whose behavior is randomized should reset their RNG from it so
    /// that a simulation's outcome is a pure function of
    /// [`Simulation::new`](crate::Simulation::new)'s `seed`. Nodes that are
    /// deterministic, or that deliberately manage their own randomness (the
    /// `fame` protocol stack threads seeds through its own constructors),
    /// keep the default no-op.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Called at the start of round `round`; returns the node's action.
    fn begin_round(&mut self, round: u64) -> Action<Self::Msg>;

    /// Called at the end of round `round`.
    ///
    /// `reception` is `Some` exactly when the node chose [`Action::Listen`]
    /// this round. The frame inside is borrowed from the engine's round
    /// arena/action slice (see [`RoundView`](crate::RoundView)); call
    /// [`Reception::cloned`] to keep it past the end of the round.
    fn end_round(&mut self, round: u64, reception: Option<Reception<&Self::Msg>>);

    /// `true` once the node has terminated its protocol.
    fn is_done(&self) -> bool;

    /// The next round this node must be visited, queried right after the
    /// driver finishes `round` (after [`Protocol::end_round`]). Must be
    /// `> round`; return [`NEVER`] to leave the driver's wake-queue for
    /// good (a done node, or one that only reacts to rounds it scheduled).
    ///
    /// The default — `round + 1`, every round — preserves the classic
    /// dense visiting order for protocols that don't opt in. A node
    /// sleeping until round `w` behaves exactly as if it had returned
    /// [`Action::Sleep`] from `begin_round` every round in `round+1..w`:
    /// overriding this is purely a cost optimization and must not change
    /// behavior.
    fn next_wake(&self, round: u64) -> u64 {
        round + 1
    }
}
