//! The adversary interface: a `t`-channel jamming/spoofing attacker with
//! full hindsight (Section 3 of the paper).

use crate::node::ChannelId;
use crate::trace::Trace;

/// What the adversary emits on one channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Emission<M> {
    /// Raw energy: collides with an honest frame; sounds like silence on an
    /// otherwise idle channel (listeners cannot detect collisions).
    Noise,
    /// A forged frame: delivered verbatim to listeners if the channel is
    /// otherwise idle, otherwise it merely collides.
    Spoof(M),
}

impl<M> Emission<M> {
    /// `true` for [`Emission::Spoof`].
    pub fn is_spoof(&self) -> bool {
        matches!(self, Emission::Spoof(_))
    }
}

/// The adversary's move for one round: at most `t` distinct channels, each
/// carrying either noise or a spoofed frame.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AdversaryAction<M> {
    /// `(channel, emission)` pairs; the engine rejects duplicates and
    /// more than `t` entries.
    pub transmissions: Vec<(ChannelId, Emission<M>)>,
}

impl<M> AdversaryAction<M> {
    /// An empty action (the adversary stays quiet this round).
    pub fn idle() -> Self {
        AdversaryAction {
            transmissions: Vec::new(),
        }
    }

    /// Jam every channel in `channels` with noise.
    pub fn jam<I>(channels: I) -> Self
    where
        I: IntoIterator<Item = ChannelId>,
    {
        AdversaryAction {
            transmissions: channels.into_iter().map(|c| (c, Emission::Noise)).collect(),
        }
    }

    /// Add one more transmission.
    pub fn push(&mut self, channel: ChannelId, emission: Emission<M>) {
        self.transmissions.push((channel, emission));
    }

    /// Number of channels used.
    pub fn len(&self) -> usize {
        self.transmissions.len()
    }

    /// `true` when the adversary does nothing.
    pub fn is_empty(&self) -> bool {
        self.transmissions.is_empty()
    }
}

/// Read-only view handed to the adversary each round.
///
/// The adversary listens on all `C` channels and, per the model, learns every
/// random choice made in *completed* rounds: the [`Trace`] contains the full
/// per-round record of what every honest node did. It never contains the
/// current round — the adversary must commit before the honest nodes' current
/// coins are revealed.
#[derive(Debug)]
pub struct AdversaryView<'a, M> {
    /// Number of channels `C`.
    pub channels: usize,
    /// Adversary budget `t`.
    pub budget: usize,
    /// Number of honest nodes `n`.
    pub nodes: usize,
    /// Everything that happened in completed rounds.
    pub trace: &'a Trace<M>,
}

/// A malicious attacker controlling up to `t` channels per round.
///
/// Implementations decide, per round, which channels to disrupt and whether
/// to jam or spoof, based on the full history of completed rounds. Exceeding
/// the budget is an engine error, not a silent clamp — see
/// [`EngineError::AdversaryBudgetExceeded`](crate::EngineError::AdversaryBudgetExceeded).
pub trait Adversary<M> {
    /// Decide this round's transmissions.
    fn act(&mut self, round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M>;

    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

impl<M> Adversary<M> for Box<dyn Adversary<M>> {
    fn act(&mut self, round: u64, view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        (**self).act(round, view)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
