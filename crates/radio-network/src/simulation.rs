//! The simulation driver: protocol nodes + adversary + network, run to
//! completion.
//!
//! The driver's per-round loop is O(awake), not O(n): nodes advertise
//! their next wake round through [`Protocol::next_wake`] and a
//! min-heap wake-queue visits only the nodes due this round, feeding
//! their `(node, action)` pairs to the engine's sparse entry point
//! ([`Network::resolve_round_sparse`]). Protocols that don't override
//! `next_wake` are visited every round, exactly like the classic dense
//! driver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::adversary::{Adversary, AdversaryView};
use crate::engine::{Network, NetworkConfig};
use crate::error::EngineError;
use crate::node::{Action, NodeId, Protocol, Reception, NEVER};
use crate::sink::TraceSink;
use crate::stats::Stats;
use crate::trace::Trace;

/// Outcome of a completed simulation run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimulationReport {
    /// Rounds executed before every node terminated.
    pub rounds: u64,
    /// Final statistics snapshot.
    pub stats: Stats,
}

/// A hook invoked after every resolved round, used by tests to check
/// cross-node invariants (the paper's Invariants 1–3) without the nodes
/// sharing any state at runtime.
pub type Inspector<'a, P> = dyn FnMut(u64, &[P]) + 'a;

/// Drives `n` protocol nodes and one adversary against a [`Network`].
///
/// The driver enforces the information flow of the model: nodes see only
/// their own receptions; the adversary sees the full trace of completed
/// rounds but never the current round's actions.
///
/// Per round, the driver pops the due nodes off its wake-queue (every
/// node starts queued for round 0), collects their actions into a sparse
/// node-sorted buffer, resolves the round, delivers receptions to the
/// listeners among them, and re-queues each node at its
/// [`Protocol::next_wake`] round ([`NEVER`] leaves the queue for good).
/// A node the queue skips behaves exactly as if it had returned
/// [`Action::Sleep`] — sparse visiting is a cost optimization, never a
/// behavior change.
#[derive(Debug)]
pub struct Simulation<P: Protocol, A> {
    nodes: Vec<P>,
    adversary: A,
    network: Network<P::Msg>,
    /// Per-round sparse action buffer — only the awake nodes' actions,
    /// sorted by node id — reused so the steady-state driver loop
    /// allocates nothing (the engine's [`RoundView`] borrows it).
    actions: Vec<(NodeId, Action<P::Msg>)>,
    /// Min-heap of `(wake_round, node)`: the nodes still participating,
    /// each queued exactly once.
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    /// Per-node done flag as of the last visit, backing the incremental
    /// `unfinished` count.
    done: Vec<bool>,
    /// Number of nodes whose last observed [`Protocol::is_done`] was
    /// `false` — keeps [`Simulation::all_done`] O(1) instead of an O(n)
    /// scan per round.
    unfinished: usize,
}

impl<P, A> Simulation<P, A>
where
    P: Protocol,
    P::Msg: Clone + std::fmt::Debug + Send + 'static,
    A: Adversary<P::Msg>,
{
    /// Assemble a simulation.
    ///
    /// `seed` is fanned out into one deterministic stream per node via
    /// [`seed::derive`](crate::seed::derive) and handed to each node through
    /// [`Protocol::reseed`] before round 0 — so randomized nodes replay
    /// bit-identically for the same `seed` regardless of how they were
    /// constructed. Protocols that manage their own randomness keep the
    /// default no-op `reseed` and are unaffected.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the network constructor (none
    /// today, `cfg` is pre-validated; kept fallible for future proofing).
    pub fn new(
        cfg: NetworkConfig,
        nodes: Vec<P>,
        adversary: A,
        seed: u64,
    ) -> Result<Self, EngineError> {
        Self::assemble(nodes, adversary, Network::new(cfg), seed)
    }

    /// Like [`Simulation::new`], but the network hands every finished
    /// round to `sink` instead of the default in-memory trace (see
    /// [`Network::with_sink`]). Node seeding is identical, so for sinks
    /// that retain the same history a run is bit-identical to
    /// [`Simulation::new`]'s.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::new`].
    pub fn with_sink(
        cfg: NetworkConfig,
        nodes: Vec<P>,
        adversary: A,
        seed: u64,
        sink: Box<dyn TraceSink<P::Msg>>,
    ) -> Result<Self, EngineError> {
        Self::assemble(nodes, adversary, Network::with_sink(cfg, sink), seed)
    }

    fn assemble(
        mut nodes: Vec<P>,
        adversary: A,
        mut network: Network<P::Msg>,
        seed: u64,
    ) -> Result<Self, EngineError> {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.reseed(crate::seed::derive(seed, i as u64));
        }
        // The channel model draws from its own reserved stream so adding a
        // node never perturbs the channel randomness (and vice versa).
        network.seed_channel_model(crate::seed::derive(seed, u64::MAX));
        // Every node starts queued for round 0 — even an already-done
        // node, whose default `next_wake` keeps it visited, matching the
        // dense driver exactly.
        let wake: BinaryHeap<Reverse<(u64, u32)>> =
            (0..nodes.len()).map(|i| Reverse((0, i as u32))).collect();
        let done: Vec<bool> = nodes.iter().map(Protocol::is_done).collect();
        let unfinished = done.iter().filter(|d| !**d).count();
        Ok(Simulation {
            nodes,
            adversary,
            network,
            actions: Vec::new(),
            wake,
            done,
            unfinished,
        })
    }

    /// The nodes, for post-run output extraction.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consume the simulation, returning the nodes.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace<P::Msg> {
        self.network.trace()
    }

    /// The statistics so far.
    pub fn stats(&self) -> &Stats {
        self.network.stats()
    }

    /// `true` once every node reports [`Protocol::is_done`] — O(1): the
    /// unfinished count is maintained incrementally on `end_round`
    /// transitions instead of scanning all `n` nodes every round.
    pub fn all_done(&self) -> bool {
        self.unfinished == 0
    }

    // detlint: deny-alloc(start) wake-queue driver round (Simulation::step)
    //
    // The action buffer and the wake heap are reused across rounds; a
    // steady-state step must stay allocation-free end to end
    // (tests/zero_alloc.rs drives a full Simulation under this claim).
    /// Execute exactly one round, visiting only the nodes the wake-queue
    /// says are due.
    ///
    /// # Errors
    ///
    /// Propagates engine validation failures (bad channels, adversary
    /// over budget). The failed round did not run: the due nodes are
    /// re-queued for the same round, so a retried `step` re-polls them
    /// exactly as the dense driver would have.
    pub fn step(&mut self) -> Result<(), EngineError> {
        let round = self.network.round();

        // Adversary commits first, seeing only completed rounds.
        let view = AdversaryView {
            channels: self.network.config().channels(),
            budget: self.network.config().budget(),
            nodes: self.nodes.len(),
            trace: self.network.trace(),
        };
        let adv_action = self.adversary.act(round, &view);

        // Awake nodes choose their actions. Within one round every queued
        // entry carries the same wake round, so the min-heap pops in
        // ascending node order — the sorted sparse list the engine
        // requires — and the buffer is reused across rounds, keeping the
        // steady-state driver loop allocation-free.
        self.actions.clear();
        while let Some(&Reverse((when, id))) = self.wake.peek() {
            if when > round {
                break;
            }
            self.wake.pop();
            let action = self.nodes[id as usize].begin_round(round);
            self.actions.push((NodeId(id as usize), action));
        }

        let resolution = match self
            .network
            .resolve_round_sparse(&self.actions, &adv_action)
        {
            Ok(view) => view,
            Err(e) => {
                for (id, _) in &self.actions {
                    self.wake.push(Reverse((round, id.index() as u32)));
                }
                return Err(e);
            }
        };

        // Deliver receptions, borrowed straight from the round view — a
        // node clones only if it keeps the frame (`Reception::cloned`) —
        // then track done transitions and re-queue per `next_wake`.
        for (id, action) in &self.actions {
            let node = &mut self.nodes[id.index()];
            let reception = match action {
                Action::Listen { channel } => Some(Reception {
                    channel: *channel,
                    frame: resolution.reception_for(*id, *channel),
                }),
                _ => None,
            };
            node.end_round(round, reception);
            let now_done = node.is_done();
            let was_done = &mut self.done[id.index()];
            if now_done != *was_done {
                *was_done = now_done;
                if now_done {
                    self.unfinished -= 1;
                } else {
                    self.unfinished += 1;
                }
            }
            let next = node.next_wake(round);
            if next != NEVER {
                self.wake
                    .push(Reverse((next.max(round + 1), id.index() as u32)));
            }
        }
        Ok(())
    }
    // detlint: deny-alloc(end)

    /// Run until every node is done, or until `max_rounds` have elapsed.
    ///
    /// # Errors
    ///
    /// [`EngineError::RoundLimitExceeded`] if nodes are still running at the
    /// limit, plus any engine validation failure from [`Simulation::step`].
    pub fn run(&mut self, max_rounds: u64) -> Result<SimulationReport, EngineError> {
        self.run_with_inspector(max_rounds, &mut |_, _| {})
    }

    /// Like [`Simulation::run`], invoking `inspector` after every round with
    /// the round number and a read-only view of all nodes.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`].
    pub fn run_with_inspector(
        &mut self,
        max_rounds: u64,
        inspector: &mut Inspector<'_, P>,
    ) -> Result<SimulationReport, EngineError> {
        let start = self.network.round();
        while !self.all_done() {
            if self.network.round() - start >= max_rounds {
                return Err(EngineError::RoundLimitExceeded {
                    limit: max_rounds,
                    unfinished: self.nodes.iter().filter(|n| !n.is_done()).count(),
                });
            }
            self.step()?;
            inspector(self.network.round() - 1, &self.nodes);
        }
        Ok(SimulationReport {
            rounds: self.network.round() - start,
            stats: *self.network.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries::NoAdversary;
    use crate::node::ChannelId;

    /// A node that transmits its id on round 0..k (if `talker`) then stops.
    struct CountdownNode {
        id: usize,
        remaining: u32,
        talker: bool,
        heard: Vec<u32>,
    }

    impl Protocol for CountdownNode {
        type Msg = u32;

        fn begin_round(&mut self, _round: u64) -> Action<u32> {
            if self.remaining == 0 {
                return Action::Sleep;
            }
            if self.talker {
                Action::Transmit {
                    channel: ChannelId(0),
                    frame: self.id as u32,
                }
            } else {
                Action::Listen {
                    channel: ChannelId(0),
                }
            }
        }

        fn end_round(&mut self, _round: u64, reception: Option<Reception<&u32>>) {
            if self.remaining > 0 {
                self.remaining -= 1;
            }
            if let Some(Reception {
                frame: Some(frame), ..
            }) = reception
            {
                self.heard.push(*frame);
            }
        }

        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    fn countdown(id: usize, remaining: u32, talker: bool) -> CountdownNode {
        CountdownNode {
            id,
            remaining,
            talker,
            heard: vec![],
        }
    }

    #[test]
    fn listener_hears_single_talker() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![countdown(0, 3, true), countdown(1, 3, false)];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let report = sim.run(10).unwrap();
        assert_eq!(report.rounds, 3);
        assert_eq!(sim.nodes()[1].heard, vec![0, 0, 0]);
    }

    #[test]
    fn round_limit_is_an_error() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![countdown(0, 100, true)];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let err = sim.run(5).unwrap_err();
        assert_eq!(
            err,
            EngineError::RoundLimitExceeded {
                limit: 5,
                unfinished: 1
            }
        );
    }

    #[test]
    fn inspector_sees_every_round() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![countdown(0, 4, true)];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let mut seen = Vec::new();
        sim.run_with_inspector(10, &mut |round, nodes| {
            assert_eq!(nodes.len(), 1);
            seen.push(round);
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_done_tracks_out_of_order_finishers() {
        // Nodes finish at rounds 1, 4, and 2 — the incremental unfinished
        // count must agree with a full scan after every single round.
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![
            countdown(0, 1, true),
            countdown(1, 4, false),
            countdown(2, 2, true),
        ];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        assert!(!sim.all_done());
        for _ in 0..4 {
            sim.step().unwrap();
            let scanned = sim.nodes().iter().all(Protocol::is_done);
            assert_eq!(sim.all_done(), scanned);
        }
        assert!(sim.all_done());
    }

    /// A node that naps: visited at round 0, it asks to wake again only at
    /// `wake_at`, then runs every round until `done_at`. Records every
    /// `begin_round` visit to prove the driver skipped the nap.
    struct NapNode {
        wake_at: u64,
        done_at: u64,
        round: u64,
        visits: Vec<u64>,
    }

    impl Protocol for NapNode {
        type Msg = u32;

        fn begin_round(&mut self, round: u64) -> Action<u32> {
            self.visits.push(round);
            Action::Sleep
        }

        fn end_round(&mut self, round: u64, _reception: Option<Reception<&u32>>) {
            self.round = round + 1;
        }

        fn is_done(&self) -> bool {
            self.round >= self.done_at
        }

        fn next_wake(&self, round: u64) -> u64 {
            if self.is_done() {
                crate::node::NEVER
            } else if round == 0 {
                self.wake_at
            } else {
                round + 1
            }
        }
    }

    #[test]
    fn wake_queue_skips_napping_nodes() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nap = NapNode {
            wake_at: 5,
            done_at: 8,
            round: 0,
            visits: vec![],
        };
        let mut sim = Simulation::new(cfg, vec![nap], NoAdversary, 0).unwrap();
        let report = sim.run(20).unwrap();
        // Rounds 1–4 still ran (the network clock is global) but never
        // visited the napping node.
        assert_eq!(sim.nodes()[0].visits, vec![0, 5, 6, 7]);
        assert_eq!(report.rounds, 8);
    }

    #[test]
    fn never_waking_done_node_leaves_the_queue() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nap = NapNode {
            wake_at: 1,
            done_at: 1,
            round: 0,
            visits: vec![],
        };
        let mut sim = Simulation::new(cfg, vec![nap], NoAdversary, 0).unwrap();
        let report = sim.run(10).unwrap();
        assert_eq!(report.rounds, 1);
        assert_eq!(sim.nodes()[0].visits, vec![0]);
    }
}
