//! The simulation driver: protocol nodes + adversary + network, run to
//! completion.

use crate::adversary::{Adversary, AdversaryView};
use crate::engine::{Network, NetworkConfig};
use crate::error::EngineError;
use crate::node::{Action, Protocol, Reception};
use crate::sink::TraceSink;
use crate::stats::Stats;
use crate::trace::Trace;

/// Outcome of a completed simulation run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimulationReport {
    /// Rounds executed before every node terminated.
    pub rounds: u64,
    /// Final statistics snapshot.
    pub stats: Stats,
}

/// A hook invoked after every resolved round, used by tests to check
/// cross-node invariants (the paper's Invariants 1–3) without the nodes
/// sharing any state at runtime.
pub type Inspector<'a, P> = dyn FnMut(u64, &[P]) + 'a;

/// Drives `n` protocol nodes and one adversary against a [`Network`].
///
/// The driver enforces the information flow of the model: nodes see only
/// their own receptions; the adversary sees the full trace of completed
/// rounds but never the current round's actions.
#[derive(Debug)]
pub struct Simulation<P: Protocol, A> {
    nodes: Vec<P>,
    adversary: A,
    network: Network<P::Msg>,
    /// Per-round action buffer, reused so the steady-state driver loop
    /// allocates nothing (the engine's [`RoundView`] borrows it).
    actions: Vec<Action<P::Msg>>,
}

impl<P, A> Simulation<P, A>
where
    P: Protocol,
    P::Msg: Clone + std::fmt::Debug + Send + 'static,
    A: Adversary<P::Msg>,
{
    /// Assemble a simulation.
    ///
    /// `seed` is fanned out into one deterministic stream per node via
    /// [`seed::derive`](crate::seed::derive) and handed to each node through
    /// [`Protocol::reseed`] before round 0 — so randomized nodes replay
    /// bit-identically for the same `seed` regardless of how they were
    /// constructed. Protocols that manage their own randomness keep the
    /// default no-op `reseed` and are unaffected.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the network constructor (none
    /// today, `cfg` is pre-validated; kept fallible for future proofing).
    pub fn new(
        cfg: NetworkConfig,
        mut nodes: Vec<P>,
        adversary: A,
        seed: u64,
    ) -> Result<Self, EngineError> {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.reseed(crate::seed::derive(seed, i as u64));
        }
        Ok(Simulation {
            nodes,
            adversary,
            network: Network::new(cfg),
            actions: Vec::new(),
        })
    }

    /// Like [`Simulation::new`], but the network hands every finished
    /// round to `sink` instead of the default in-memory trace (see
    /// [`Network::with_sink`]). Node seeding is identical, so for sinks
    /// that retain the same history a run is bit-identical to
    /// [`Simulation::new`]'s.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::new`].
    pub fn with_sink(
        cfg: NetworkConfig,
        mut nodes: Vec<P>,
        adversary: A,
        seed: u64,
        sink: Box<dyn TraceSink<P::Msg>>,
    ) -> Result<Self, EngineError> {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.reseed(crate::seed::derive(seed, i as u64));
        }
        Ok(Simulation {
            nodes,
            adversary,
            network: Network::with_sink(cfg, sink),
            actions: Vec::new(),
        })
    }

    /// The nodes, for post-run output extraction.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consume the simulation, returning the nodes.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace<P::Msg> {
        self.network.trace()
    }

    /// The statistics so far.
    pub fn stats(&self) -> &Stats {
        self.network.stats()
    }

    /// `true` once every node reports [`Protocol::is_done`].
    pub fn all_done(&self) -> bool {
        self.nodes.iter().all(Protocol::is_done)
    }

    /// Execute exactly one round.
    ///
    /// # Errors
    ///
    /// Propagates engine validation failures (bad channels, adversary
    /// over budget).
    pub fn step(&mut self) -> Result<(), EngineError> {
        let round = self.network.round();

        // Adversary commits first, seeing only completed rounds.
        let view = AdversaryView {
            channels: self.network.config().channels(),
            budget: self.network.config().budget(),
            nodes: self.nodes.len(),
            trace: self.network.trace(),
        };
        let adv_action = self.adversary.act(round, &view);

        // Honest nodes choose their actions (the buffer is reused across
        // rounds, so the steady-state driver loop is allocation-free).
        self.actions.clear();
        for node in &mut self.nodes {
            self.actions.push(node.begin_round(round));
        }

        let resolution = self.network.resolve_round(&self.actions, &adv_action)?;

        // Deliver receptions, borrowed straight from the round view — a
        // node clones only if it keeps the frame (`Reception::cloned`).
        for (node, action) in self.nodes.iter_mut().zip(&self.actions) {
            let reception = match action {
                Action::Listen { channel } => Some(Reception {
                    channel: *channel,
                    frame: resolution.heard_on(*channel),
                }),
                _ => None,
            };
            node.end_round(round, reception);
        }
        Ok(())
    }

    /// Run until every node is done, or until `max_rounds` have elapsed.
    ///
    /// # Errors
    ///
    /// [`EngineError::RoundLimitExceeded`] if nodes are still running at the
    /// limit, plus any engine validation failure from [`Simulation::step`].
    pub fn run(&mut self, max_rounds: u64) -> Result<SimulationReport, EngineError> {
        self.run_with_inspector(max_rounds, &mut |_, _| {})
    }

    /// Like [`Simulation::run`], invoking `inspector` after every round with
    /// the round number and a read-only view of all nodes.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`].
    pub fn run_with_inspector(
        &mut self,
        max_rounds: u64,
        inspector: &mut Inspector<'_, P>,
    ) -> Result<SimulationReport, EngineError> {
        let start = self.network.round();
        while !self.all_done() {
            if self.network.round() - start >= max_rounds {
                return Err(EngineError::RoundLimitExceeded {
                    limit: max_rounds,
                    unfinished: self.nodes.iter().filter(|n| !n.is_done()).count(),
                });
            }
            self.step()?;
            inspector(self.network.round() - 1, &self.nodes);
        }
        Ok(SimulationReport {
            rounds: self.network.round() - start,
            stats: *self.network.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries::NoAdversary;
    use crate::node::ChannelId;

    /// A node that transmits its id on round 0..k (if `talker`) then stops.
    struct CountdownNode {
        id: usize,
        remaining: u32,
        talker: bool,
        heard: Vec<u32>,
    }

    impl Protocol for CountdownNode {
        type Msg = u32;

        fn begin_round(&mut self, _round: u64) -> Action<u32> {
            if self.remaining == 0 {
                return Action::Sleep;
            }
            if self.talker {
                Action::Transmit {
                    channel: ChannelId(0),
                    frame: self.id as u32,
                }
            } else {
                Action::Listen {
                    channel: ChannelId(0),
                }
            }
        }

        fn end_round(&mut self, _round: u64, reception: Option<Reception<&u32>>) {
            if self.remaining > 0 {
                self.remaining -= 1;
            }
            if let Some(Reception {
                frame: Some(frame), ..
            }) = reception
            {
                self.heard.push(*frame);
            }
        }

        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn listener_hears_single_talker() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![
            CountdownNode {
                id: 0,
                remaining: 3,
                talker: true,
                heard: vec![],
            },
            CountdownNode {
                id: 1,
                remaining: 3,
                talker: false,
                heard: vec![],
            },
        ];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let report = sim.run(10).unwrap();
        assert_eq!(report.rounds, 3);
        assert_eq!(sim.nodes()[1].heard, vec![0, 0, 0]);
    }

    #[test]
    fn round_limit_is_an_error() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![CountdownNode {
            id: 0,
            remaining: 100,
            talker: true,
            heard: vec![],
        }];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let err = sim.run(5).unwrap_err();
        assert_eq!(
            err,
            EngineError::RoundLimitExceeded {
                limit: 5,
                unfinished: 1
            }
        );
    }

    #[test]
    fn inspector_sees_every_round() {
        let cfg = NetworkConfig::new(2, 1).unwrap();
        let nodes = vec![CountdownNode {
            id: 0,
            remaining: 4,
            talker: true,
            heard: vec![],
        }];
        let mut sim = Simulation::new(cfg, nodes, NoAdversary, 0).unwrap();
        let mut seen = Vec::new();
        sim.run_with_inspector(10, &mut |round, nodes| {
            assert_eq!(nodes.len(), 1);
            seen.push(round);
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
