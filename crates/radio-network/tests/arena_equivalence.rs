//! The arena-backed round core is **bit-identical** to the pre-refactor
//! engine.
//!
//! `reference` below is a faithful reimplementation of the engine as it
//! stood before the `RoundArena`/`RoundView` refactor: per-channel gather
//! `Vec`s, owned `RoundResolution` returns, per-round record
//! construction, the same stats accounting. The property tests drive both
//! engines through identical multi-round executions — arbitrary honest
//! action mixes, arbitrary jam/spoof adversary moves, and the roster's
//! history-mining adversaries (random, spoofing, busy-window) whose moves
//! are derived from the retained trace — and require equal outcomes,
//! equal [`Stats`], and equal retained trace records after every round.

use proptest::prelude::*;

use radio_network::adversaries::{BusyChannelJammer, RandomJammer, Spoofer};
use radio_network::{
    Action, Adversary, AdversaryAction, AdversaryView, ChannelId, ChannelModelSpec, ChannelOutcome,
    Emission, Network, NetworkConfig, NodeId, RoundRecord, RoundResolution, Stats, Trace,
    TraceRetention,
};

/// The pre-refactor round engine, kept simple rather than fast.
mod reference {
    use super::*;

    pub struct ReferenceNetwork {
        channels: usize,
        round: u64,
        pub stats: Stats,
        pub trace: Trace<u32>,
    }

    impl ReferenceNetwork {
        pub fn new(channels: usize, retention: TraceRetention) -> Self {
            ReferenceNetwork {
                channels,
                round: 0,
                stats: Stats::default(),
                trace: Trace::new(retention),
            }
        }

        pub fn resolve_round(
            &mut self,
            actions: &[Action<u32>],
            adversary: &AdversaryAction<u32>,
        ) -> RoundResolution<u32> {
            let c = self.channels;
            let mut honest_tx: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); c];
            let mut listeners: Vec<(NodeId, ChannelId)> = Vec::new();
            for (i, action) in actions.iter().enumerate() {
                match action {
                    Action::Transmit { channel, frame } => {
                        honest_tx[channel.index()].push((NodeId(i), *frame));
                    }
                    Action::Listen { channel } => listeners.push((NodeId(i), *channel)),
                    Action::Sleep => {}
                }
            }
            let mut adv_tx: Vec<Option<&Emission<u32>>> = vec![None; c];
            for (ch, emission) in &adversary.transmissions {
                assert!(adv_tx[ch.index()].is_none(), "duplicate adversary channel");
                adv_tx[ch.index()] = Some(emission);
            }

            let mut outcomes: Vec<ChannelOutcome<u32>> = Vec::with_capacity(c);
            for ch in 0..c {
                let honest = &honest_tx[ch];
                let outcome = match (honest.len(), adv_tx[ch]) {
                    (0, None) => ChannelOutcome::Idle,
                    (0, Some(Emission::Noise)) => ChannelOutcome::NoiseOnly,
                    (0, Some(Emission::Spoof(frame))) => {
                        ChannelOutcome::SpoofDelivered { frame: *frame }
                    }
                    (1, None) => {
                        let (from, frame) = honest[0];
                        ChannelOutcome::Delivered { from, frame }
                    }
                    _ => ChannelOutcome::Collision {
                        honest: honest.iter().map(|&(id, _)| id).collect(),
                        adversary: adv_tx[ch].is_some(),
                    },
                };
                outcomes.push(outcome);
            }

            self.stats.rounds += 1;
            self.stats.adversary_transmissions += adversary.len() as u64;
            for (ch, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    ChannelOutcome::Delivered { .. } => {
                        self.stats.honest_transmissions += 1;
                        self.stats.honest_deliveries += 1;
                    }
                    ChannelOutcome::SpoofDelivered { .. } => {
                        if listeners.iter().any(|&(_, l)| l.index() == ch) {
                            self.stats.spoofs_delivered += 1;
                        }
                    }
                    ChannelOutcome::Collision { honest, adversary } => {
                        self.stats.honest_transmissions += honest.len() as u64;
                        self.stats.collisions += honest.len() as u64;
                        if *adversary {
                            self.stats.jams_effective += 1;
                        }
                    }
                    ChannelOutcome::Idle | ChannelOutcome::NoiseOnly => {}
                }
            }
            for &(_, ch) in &listeners {
                match outcomes[ch.index()].heard() {
                    Some(_) => self.stats.frames_received += 1,
                    None => self.stats.silent_receptions += 1,
                }
            }

            let delivered: Vec<Option<u32>> = outcomes.iter().map(ChannelOutcome::heard).collect();
            let mut transmissions = Vec::new();
            for (ch, txs) in honest_tx.iter().enumerate() {
                for &(id, frame) in txs {
                    transmissions.push((id, ChannelId(ch), frame));
                }
            }
            self.trace.push(RoundRecord::from_parts(
                self.round,
                transmissions,
                listeners,
                adversary.transmissions.clone(),
                delivered,
            ));

            let resolution = RoundResolution {
                round: self.round,
                outcomes,
            };
            self.round += 1;
            resolution
        }
    }
}

#[derive(Clone, Debug)]
enum GenAction {
    Transmit(usize, u32),
    Listen(usize),
    Sleep,
}

fn to_actions(gen: &[GenAction]) -> Vec<Action<u32>> {
    gen.iter()
        .map(|g| match *g {
            GenAction::Transmit(ch, f) => Action::Transmit {
                channel: ChannelId(ch),
                frame: f,
            },
            GenAction::Listen(ch) => Action::Listen {
                channel: ChannelId(ch),
            },
            GenAction::Sleep => Action::Sleep,
        })
        .collect()
}

fn arb_round(
    c: usize,
    n: usize,
    t: usize,
) -> impl Strategy<Value = (Vec<GenAction>, Vec<(usize, Option<u32>)>)> {
    let actions = proptest::collection::vec(
        prop_oneof![
            (0..c, any::<u32>()).prop_map(|(ch, f)| GenAction::Transmit(ch, f)),
            (0..c).prop_map(GenAction::Listen),
            Just(GenAction::Sleep),
        ],
        n,
    );
    let adversary =
        proptest::collection::btree_map(0..c, proptest::option::of(any::<u32>()), 0..=t)
            .prop_map(|m| m.into_iter().collect::<Vec<_>>());
    (actions, adversary)
}

/// The sparse form of a dense action slice: awake (non-Sleep) nodes only,
/// as node-sorted pairs — exactly what the wake-queue driver feeds
/// [`Network::resolve_round_sparse`].
fn to_sparse(actions: &[Action<u32>]) -> Vec<(NodeId, Action<u32>)> {
    actions
        .iter()
        .enumerate()
        .filter(|(_, a)| !matches!(a, Action::Sleep))
        .map(|(i, a)| (NodeId(i), a.clone()))
        .collect()
}

fn to_adversary(gen: &[(usize, Option<u32>)]) -> AdversaryAction<u32> {
    let mut action = AdversaryAction::idle();
    for &(ch, spoof) in gen {
        action.push(
            ChannelId(ch),
            match spoof {
                Some(f) => Emission::Spoof(f),
                None => Emission::Noise,
            },
        );
    }
    action
}

/// Compare the engine against the reference after every round of an
/// execution: resolutions, stats, completed-round counts, and every
/// retained record.
fn assert_equivalent_execution(
    retention: TraceRetention,
    c: usize,
    t: usize,
    rounds: &[(Vec<Action<u32>>, AdversaryAction<u32>)],
) {
    let cfg = NetworkConfig::new(c, t).unwrap().with_retention(retention);
    let mut engine: Network<u32> = Network::new(cfg);
    let mut reference = reference::ReferenceNetwork::new(c, retention);
    for (actions, adversary) in rounds {
        let expected = reference.resolve_round(actions, adversary);
        let view = engine.resolve_round(actions, adversary).unwrap();
        assert_eq!(view.to_resolution(), expected);
        assert_eq!(engine.stats(), &reference.stats);
        assert_eq!(
            engine.trace().completed_rounds(),
            reference.trace.completed_rounds()
        );
        assert_eq!(engine.trace().len(), reference.trace.len());
        assert!(engine
            .trace()
            .records()
            .zip(reference.trace.records())
            .all(|(a, b)| a == b));
    }
}

proptest! {
    /// Arbitrary multi-round executions under arbitrary jam/spoof moves:
    /// the arena engine and the reference agree on every outcome, every
    /// stat, and every retained record, across all retention policies.
    #[test]
    fn arena_engine_matches_reference(
        rounds in proptest::collection::vec(arb_round(4, 10, 2), 1..12),
        retention in prop_oneof![
            Just(TraceRetention::All),
            Just(TraceRetention::LastRounds(3)),
            Just(TraceRetention::None),
        ],
    ) {
        let rounds: Vec<(Vec<Action<u32>>, AdversaryAction<u32>)> = rounds
            .iter()
            .map(|(gen, adv)| (to_actions(gen), to_adversary(adv)))
            .collect();
        assert_equivalent_execution(retention, 4, 2, &rounds);
    }

    /// The sparse entry point is bit-identical to the dense one: the same
    /// execution through `resolve_round` (sleepers as explicit `Sleep`)
    /// and `resolve_round_sparse` (sleepers omitted) yields the same
    /// resolutions, stats, and retained records under every retention
    /// policy — and both match the pre-refactor reference.
    #[test]
    fn sparse_engine_matches_dense_and_reference(
        rounds in proptest::collection::vec(arb_round(4, 10, 2), 1..12),
        retention in prop_oneof![
            Just(TraceRetention::All),
            Just(TraceRetention::LastRounds(3)),
            Just(TraceRetention::None),
        ],
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap().with_retention(retention);
        let mut dense: Network<u32> = Network::new(cfg.clone());
        let mut sparse: Network<u32> = Network::new(cfg);
        let mut reference = reference::ReferenceNetwork::new(4, retention);
        for (gen, adv) in &rounds {
            let actions = to_actions(gen);
            let pairs = to_sparse(&actions);
            let adversary = to_adversary(adv);
            let expected = reference.resolve_round(&actions, &adversary);
            let d = dense.resolve_round(&actions, &adversary).unwrap().to_resolution();
            let s = sparse
                .resolve_round_sparse(&pairs, &adversary)
                .unwrap()
                .to_resolution();
            prop_assert_eq!(&d, &expected);
            prop_assert_eq!(&s, &expected);
            prop_assert_eq!(dense.stats(), sparse.stats());
            prop_assert_eq!(sparse.stats(), &reference.stats);
            prop_assert_eq!(dense.trace().len(), sparse.trace().len());
            prop_assert_eq!(
                sparse.trace().completed_rounds(),
                reference.trace.completed_rounds()
            );
            prop_assert!(dense
                .trace()
                .records()
                .zip(sparse.trace().records())
                .all(|(a, b)| a == b));
            prop_assert!(sparse
                .trace()
                .records()
                .zip(reference.trace.records())
                .all(|(a, b)| a == b));
        }
    }

    /// The roster's trace-mining adversaries (random jammer, spoofer,
    /// busy-window jammer) against a scripted honest schedule: adversary
    /// moves are derived from the engine's retained trace each round, so
    /// this exercises the record arena, the recycled bounded window, and
    /// history-dependent behavior end to end.
    #[test]
    fn roster_adversaries_stay_bit_identical(
        seed in any::<u64>(),
        kind in 0..3usize,
        rounds in 4..40usize,
    ) {
        let (c, t, n) = (5, 2, 12);
        let cfg = NetworkConfig::new(c, t)
            .unwrap()
            .with_retention(TraceRetention::LastRounds(8));
        let mut engine: Network<u32> = Network::new(cfg);
        let mut reference =
            reference::ReferenceNetwork::new(c, TraceRetention::LastRounds(8));
        let mut adversary: Box<dyn Adversary<u32>> = match kind {
            0 => Box::new(RandomJammer::new(seed)),
            1 => Box::new(Spoofer::new(seed, |round, ch: ChannelId| {
                (round as u32) << 8 | ch.index() as u32
            })),
            _ => Box::new(BusyChannelJammer::new(seed, 6)),
        };
        for round in 0..rounds as u64 {
            // A deterministic, channel-skewed honest schedule (some
            // collisions, some clean deliveries, rotating listeners).
            let actions: Vec<Action<u32>> = (0..n)
                .map(|i| match (i + round as usize) % 4 {
                    0 => Action::Transmit {
                        channel: ChannelId(i % 2),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    1 => Action::Transmit {
                        channel: ChannelId(2 + (i + round as usize) % (c - 2)),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    2 => Action::Listen {
                        channel: ChannelId((i + round as usize) % c),
                    },
                    _ => Action::Sleep,
                })
                .collect();
            // The adversary mines the ENGINE's trace; the reference must
            // have retained the identical history for this to stay fair.
            let view = AdversaryView {
                channels: c,
                budget: t,
                nodes: n,
                trace: engine.trace(),
            };
            let adv_action = adversary.act(round, &view);
            let expected = reference.resolve_round(&actions, &adv_action);
            let got = engine
                .resolve_round(&actions, &adv_action)
                .unwrap()
                .to_resolution();
            prop_assert_eq!(got, expected);
            prop_assert_eq!(engine.stats(), &reference.stats);
            prop_assert_eq!(engine.trace().len(), reference.trace.len());
            prop_assert!(engine
                .trace()
                .records()
                .zip(reference.trace.records())
                .all(|(a, b)| a == b));
        }
    }

    /// Selecting [`ChannelModelSpec::Ideal`] explicitly is bit-identical
    /// to the default (model-less) configuration — on the dense AND the
    /// sparse path, under every retention policy, against the
    /// history-mining roster. This is the guarantee that lets the
    /// committed BENCH files and golden corpus stay valid across the
    /// channel-model refactor: threading the trait through the engine
    /// changed no ideal-path byte.
    #[test]
    fn explicit_ideal_model_is_bit_identical_to_default(
        seed in any::<u64>(),
        kind in 0..3usize,
        rounds in 4..40usize,
        retention in prop_oneof![
            Just(TraceRetention::All),
            Just(TraceRetention::LastRounds(8)),
            Just(TraceRetention::None),
        ],
    ) {
        let (c, t, n) = (5, 2, 12);
        let cfg = NetworkConfig::new(c, t).unwrap().with_retention(retention);
        let cfg_ideal = cfg.clone().with_channel_model(ChannelModelSpec::Ideal);
        let mut default_dense: Network<u32> = Network::new(cfg);
        let mut ideal_dense: Network<u32> = Network::new(cfg_ideal.clone());
        let mut ideal_sparse: Network<u32> = Network::new(cfg_ideal);
        // The model seed must be irrelevant under Ideal; give the
        // explicit-model engines one anyway to prove it.
        ideal_dense.seed_channel_model(seed ^ 0xDEAD_BEEF);
        ideal_sparse.seed_channel_model(!seed);
        let mut adversary: Box<dyn Adversary<u32>> = match kind {
            0 => Box::new(RandomJammer::new(seed)),
            1 => Box::new(Spoofer::new(seed, |round, ch: ChannelId| {
                (round as u32) << 8 | ch.index() as u32
            })),
            _ => Box::new(BusyChannelJammer::new(seed, 6)),
        };
        for round in 0..rounds as u64 {
            let actions: Vec<Action<u32>> = (0..n)
                .map(|i| match (i + round as usize) % 4 {
                    0 => Action::Transmit {
                        channel: ChannelId(i % 2),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    1 => Action::Transmit {
                        channel: ChannelId(2 + (i + round as usize) % (c - 2)),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    2 => Action::Listen {
                        channel: ChannelId((i + round as usize) % c),
                    },
                    _ => Action::Sleep,
                })
                .collect();
            let pairs = to_sparse(&actions);
            let view = AdversaryView {
                channels: c,
                budget: t,
                nodes: n,
                trace: default_dense.trace(),
            };
            let adv_action = adversary.act(round, &view);
            let expected = default_dense
                .resolve_round(&actions, &adv_action)
                .unwrap()
                .to_resolution();
            let got_dense = ideal_dense
                .resolve_round(&actions, &adv_action)
                .unwrap()
                .to_resolution();
            let got_sparse = ideal_sparse
                .resolve_round_sparse(&pairs, &adv_action)
                .unwrap()
                .to_resolution();
            prop_assert_eq!(&got_dense, &expected);
            prop_assert_eq!(&got_sparse, &expected);
            prop_assert_eq!(default_dense.stats(), ideal_dense.stats());
            prop_assert_eq!(default_dense.stats(), ideal_sparse.stats());
            prop_assert_eq!(default_dense.trace().len(), ideal_dense.trace().len());
            prop_assert!(default_dense
                .trace()
                .records()
                .zip(ideal_dense.trace().records())
                .all(|(a, b)| a == b && a.reception_nodes.is_empty()));
            prop_assert!(default_dense
                .trace()
                .records()
                .zip(ideal_sparse.trace().records())
                .all(|(a, b)| a == b));
        }
    }

    /// Sparse resolution against the full trace-mining adversary roster,
    /// under every retention mode: the adversary mines the *dense*
    /// engine's trace, both engines resolve the identical round, and the
    /// sparse one must stay bit-identical round by round — outcomes,
    /// stats, and retained records. (A divergence in any retained record
    /// would also skew the adversary's future moves, so the execution
    /// itself is a sensitive detector.)
    #[test]
    fn sparse_roster_stays_bit_identical(
        seed in any::<u64>(),
        kind in 0..3usize,
        rounds in 4..40usize,
        retention in prop_oneof![
            Just(TraceRetention::All),
            Just(TraceRetention::LastRounds(8)),
            Just(TraceRetention::None),
        ],
    ) {
        let (c, t, n) = (5, 2, 12);
        let cfg = NetworkConfig::new(c, t).unwrap().with_retention(retention);
        let mut dense: Network<u32> = Network::new(cfg.clone());
        let mut sparse: Network<u32> = Network::new(cfg);
        let mut adversary: Box<dyn Adversary<u32>> = match kind {
            0 => Box::new(RandomJammer::new(seed)),
            1 => Box::new(Spoofer::new(seed, |round, ch: ChannelId| {
                (round as u32) << 8 | ch.index() as u32
            })),
            _ => Box::new(BusyChannelJammer::new(seed, 6)),
        };
        for round in 0..rounds as u64 {
            let actions: Vec<Action<u32>> = (0..n)
                .map(|i| match (i + round as usize) % 4 {
                    0 => Action::Transmit {
                        channel: ChannelId(i % 2),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    1 => Action::Transmit {
                        channel: ChannelId(2 + (i + round as usize) % (c - 2)),
                        frame: (round as u32) * 100 + i as u32,
                    },
                    2 => Action::Listen {
                        channel: ChannelId((i + round as usize) % c),
                    },
                    _ => Action::Sleep,
                })
                .collect();
            let pairs = to_sparse(&actions);
            let view = AdversaryView {
                channels: c,
                budget: t,
                nodes: n,
                trace: dense.trace(),
            };
            let adv_action = adversary.act(round, &view);
            let expected = dense
                .resolve_round(&actions, &adv_action)
                .unwrap()
                .to_resolution();
            let got = sparse
                .resolve_round_sparse(&pairs, &adv_action)
                .unwrap()
                .to_resolution();
            prop_assert_eq!(got, expected);
            prop_assert_eq!(dense.stats(), sparse.stats());
            prop_assert_eq!(dense.trace().len(), sparse.trace().len());
            prop_assert_eq!(
                dense.trace().completed_rounds(),
                sparse.trace().completed_rounds()
            );
            prop_assert!(dense
                .trace()
                .records()
                .zip(sparse.trace().records())
                .all(|(a, b)| a == b));
        }
    }
}
