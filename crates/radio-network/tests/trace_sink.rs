//! Integration tests for the [`TraceSink`] pipeline: bounded-queue
//! backpressure, drop-policy accounting, flush-on-drop, and the central
//! determinism property — streaming a trace off the round loop must not
//! change the execution.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use proptest::prelude::*;

use radio_network::adversaries::BusyChannelJammer;
use radio_network::testing::BeaconNode;
use radio_network::{
    record_line, ChannelSink, InMemorySink, NetworkConfig, OverflowPolicy, RoundRecord, Simulation,
    TraceRetention, TraceSink,
};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("radio-sink-{}-{tag}.jsonl", std::process::id()))
}

fn record(round: u64) -> RoundRecord<u32> {
    RoundRecord::from_parts(
        round,
        vec![(radio_network::NodeId(0), radio_network::ChannelId(0), 1)],
        vec![],
        vec![],
        vec![Some(1), None],
    )
}

/// A writer whose every write blocks until the test opens a gate; the
/// first write signals that the writer thread has dequeued a record.
#[derive(Clone)]
struct GatedWriter {
    state: Arc<(Mutex<GateState>, Condvar)>,
}

#[derive(Default)]
struct GateState {
    writes_started: usize,
    open: bool,
}

impl GatedWriter {
    fn new() -> Self {
        GatedWriter {
            state: Arc::new((Mutex::new(GateState::default()), Condvar::new())),
        }
    }

    /// Wait until the writer thread has started its first write.
    fn wait_first_write(&self) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        while st.writes_started == 0 {
            st = cvar.wait(st).unwrap();
        }
    }

    /// Let every pending and future write proceed.
    fn open(&self) {
        let (lock, cvar) = &*self.state;
        lock.lock().unwrap().open = true;
        cvar.notify_all();
    }
}

impl Write for GatedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.writes_started += 1;
        cvar.notify_all();
        while !st.open {
            st = cvar.wait(st).unwrap();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An encoder that signals the test when the writer thread dequeues its
/// first record, then blocks until released — giving tests a writer
/// thread frozen at a known point with an empty queue.
fn gated_encoder(
    gate: Arc<(Mutex<bool>, Condvar)>,
    first: mpsc::Sender<()>,
) -> impl Fn(&u32) -> String + Send + 'static {
    let signalled = Mutex::new(false);
    move |m: &u32| {
        {
            let mut s = signalled.lock().unwrap();
            if !*s {
                *s = true;
                first.send(()).ok();
            }
        }
        let (lock, cvar) = &*gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        m.to_string()
    }
}

#[test]
fn drop_policy_counts_exactly_the_overflow() {
    // Freeze the writer thread inside the encoding of record 0 (queue
    // drained), fill the queue of capacity 2, and verify that every
    // further record is counted as dropped — then release the writer and
    // check exactly the surviving records reached the output.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let (first_tx, first_rx) = mpsc::channel();
    let mut sink: ChannelSink<u32> = ChannelSink::with_encoder(
        io::sink(),
        2,
        OverflowPolicy::DropNewest,
        gated_encoder(gate.clone(), first_tx),
    );

    sink.record(&record(0));
    first_rx.recv().unwrap(); // writer holds record 0; queue is empty
    sink.record(&record(1));
    sink.record(&record(2)); // queue now full (capacity 2)
    for r in 3..10 {
        sink.record(&record(r));
    }
    assert_eq!(sink.dropped_records(), 7);
    assert_eq!(sink.history().completed_rounds(), 10);

    let (lock, cvar) = &*gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
    let report = sink.finish().unwrap();
    assert_eq!(report.written, 3);
    assert_eq!(report.dropped, 7);
}

#[test]
fn block_policy_is_lossless_under_backpressure() {
    // A slow writer (gated, then opened) with a tiny queue: the Block
    // policy must stall the producer rather than lose records.
    let writer = GatedWriter::new();
    let handle = writer.clone();
    let mut sink: ChannelSink<u32> =
        ChannelSink::with_encoder(writer, 1, OverflowPolicy::Block, |m: &u32| m.to_string());
    // Produce from a thread so the test can open the gate afterwards;
    // with capacity 1 the producer must block long before round 100.
    let producer = std::thread::spawn(move || {
        for r in 0..100 {
            sink.record(&record(r));
        }
        sink.finish().unwrap()
    });
    handle.wait_first_write();
    handle.open();
    let report = producer.join().unwrap();
    assert_eq!(report.written, 100);
    assert_eq!(report.dropped, 0);
}

#[test]
fn writer_thread_flushes_on_drop() {
    // Dropping the sink (not calling finish) must still drain the queue
    // and flush the BufWriter before the file handle closes.
    let path = tmp_path("flush-on-drop");
    {
        let mut sink: ChannelSink<u32> =
            ChannelSink::create(&path, 8, OverflowPolicy::Block).unwrap();
        for r in 0..64 {
            sink.record(&record(r));
        }
        // sink dropped here, file closed after the writer drains
    }
    let contents = std::fs::read_to_string(&path).unwrap();
    assert_eq!(contents.lines().count(), 64);
    assert!(contents
        .lines()
        .last()
        .unwrap()
        .starts_with("{\"round\":63,"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulation_drop_flushes_streamed_trace() {
    // The same guarantee through the full stack: a Simulation owning a
    // ChannelSink is simply dropped; the trace file must be complete.
    let path = tmp_path("sim-drop");
    let cfg = NetworkConfig::new(3, 1).unwrap();
    let rounds;
    {
        let nodes: Vec<BeaconNode> = (0..6).map(|i| BeaconNode::new(i, 3, 40)).collect();
        let sink: ChannelSink<u64> = ChannelSink::create(&path, 4, OverflowPolicy::Block).unwrap();
        let mut sim =
            Simulation::with_sink(cfg, nodes, BusyChannelJammer::new(5, 8), 11, Box::new(sink))
                .unwrap();
        rounds = sim.run(1_000).unwrap().rounds;
    }
    let contents = std::fs::read_to_string(&path).unwrap();
    assert_eq!(contents.lines().count() as u64, rounds);
    std::fs::remove_file(&path).ok();
}

/// Run the beacon/busy-jammer stack with the given sink; return what the
/// sink retained in memory, rendered through the shared encoder.
fn run_stack(seed: u64, sink: Box<dyn TraceSink<u64>>) -> (u64, Vec<String>) {
    let cfg = NetworkConfig::new(4, 2).unwrap();
    let nodes: Vec<BeaconNode> = (0..8).map(|i| BeaconNode::new(i, 4, 30)).collect();
    // A history-mining adversary: any divergence in what the sink exposes
    // as history changes its jamming choices, and with them the trace.
    let adversary = BusyChannelJammer::new(seed ^ 0xAD, 16);
    let mut sim = Simulation::with_sink(cfg, nodes, adversary, seed, sink).unwrap();
    let rounds = sim.run(1_000).unwrap().rounds;
    let lines = sim
        .trace()
        .records()
        .map(|r| record_line(r, |m| format!("{m:?}")))
        .collect();
    (rounds, lines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: for any seed, streaming records through a
    /// bounded channel to a background writer (ChannelSink) yields the
    /// exact same record sequence as the classic in-memory trace — no
    /// behavioral drift from moving tracing off-thread.
    #[test]
    fn channel_sink_matches_in_memory_sink(seed in any::<u64>()) {
        let path = tmp_path(&format!("prop-{seed:x}"));
        let (mem_rounds, mem_lines) =
            run_stack(seed, Box::new(InMemorySink::new(TraceRetention::All)));
        let sink = ChannelSink::create(&path, 4, OverflowPolicy::Block)
            .unwrap()
            .with_history(TraceRetention::All);
        let (ch_rounds, ch_lines) = run_stack(seed, Box::new(sink));

        prop_assert_eq!(mem_rounds, ch_rounds);
        prop_assert_eq!(&mem_lines, &ch_lines);

        // And the streamed file holds exactly the same lines, in order.
        let file_lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&mem_lines, &file_lines);
    }
}
