//! Property tests for the channel-resolution semantics of Section 3.

use proptest::prelude::*;

use radio_network::{
    Action, AdversaryAction, ChannelId, ChannelOutcome, Emission, Network, NetworkConfig,
    OutcomeView,
};

#[derive(Clone, Debug)]
enum GenAction {
    Transmit(usize, u32),
    Listen(usize),
    Sleep,
}

fn arb_actions(c: usize, n: usize) -> impl Strategy<Value = Vec<GenAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0..c, any::<u32>()).prop_map(|(ch, f)| GenAction::Transmit(ch, f)),
            (0..c).prop_map(GenAction::Listen),
            Just(GenAction::Sleep),
        ],
        n,
    )
}

fn arb_adversary(c: usize, t: usize) -> impl Strategy<Value = Vec<(usize, Option<u32>)>> {
    proptest::collection::btree_map(0..c, proptest::option::of(any::<u32>()), 0..=t)
        .prop_map(|m| m.into_iter().collect())
}

fn to_actions(gen: &[GenAction]) -> Vec<Action<u32>> {
    gen.iter()
        .map(|g| match g {
            GenAction::Transmit(ch, f) => Action::Transmit {
                channel: ChannelId(*ch),
                frame: *f,
            },
            GenAction::Listen(ch) => Action::Listen {
                channel: ChannelId(*ch),
            },
            GenAction::Sleep => Action::Sleep,
        })
        .collect()
}

fn to_adversary(gen: &[(usize, Option<u32>)]) -> AdversaryAction<u32> {
    let mut action = AdversaryAction::idle();
    for &(ch, spoof) in gen {
        action.push(
            ChannelId(ch),
            match spoof {
                Some(f) => Emission::Spoof(f),
                None => Emission::Noise,
            },
        );
    }
    action
}

proptest! {
    /// The fundamental law: a channel delivers iff it has exactly one
    /// transmitter, and the delivered frame is that transmitter's.
    #[test]
    fn resolution_matches_transmitter_count(
        gen in arb_actions(4, 12),
        adv in arb_adversary(4, 2),
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let adversary = to_adversary(&adv);
        let resolution = net.resolve_round(&actions, &adversary).unwrap().to_resolution();

        for ch in 0..4 {
            let honest: Vec<u32> = gen.iter().filter_map(|g| match g {
                GenAction::Transmit(c, f) if *c == ch => Some(*f),
                _ => None,
            }).collect();
            let adv_here = adv.iter().find(|(c, _)| *c == ch);
            let total = honest.len() + usize::from(adv_here.is_some());
            let heard = resolution.heard_on(ChannelId(ch));
            match total {
                1 => {
                    if honest.len() == 1 {
                        prop_assert_eq!(heard, Some(honest[0]));
                    } else {
                        // adversary alone: spoof delivers, noise doesn't
                        match adv_here.unwrap().1 {
                            Some(f) => prop_assert_eq!(heard, Some(f)),
                            None => prop_assert_eq!(heard, None),
                        }
                    }
                }
                _ => prop_assert_eq!(heard, None),
            }
        }
    }

    /// The borrowed view and the owned resolution agree channel by channel.
    #[test]
    fn view_agrees_with_owned_resolution(
        gen in arb_actions(4, 12),
        adv in arb_adversary(4, 2),
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let adversary = to_adversary(&adv);
        let view = net.resolve_round(&actions, &adversary).unwrap();
        let owned = view.to_resolution();
        prop_assert_eq!(view.round(), owned.round);
        prop_assert_eq!(view.channels(), owned.outcomes.len());
        for ch in 0..view.channels() {
            let channel = ChannelId(ch);
            prop_assert_eq!(view.heard_on(channel).copied(), owned.heard_on(channel));
            match (view.outcome(channel), &owned.outcomes[ch]) {
                (OutcomeView::Idle, ChannelOutcome::Idle)
                | (OutcomeView::NoiseOnly, ChannelOutcome::NoiseOnly) => {}
                (
                    OutcomeView::Delivered { from, frame },
                    ChannelOutcome::Delivered { from: of, frame: off },
                ) => {
                    prop_assert_eq!(from, *of);
                    prop_assert_eq!(frame, off);
                }
                (
                    OutcomeView::SpoofDelivered { frame },
                    ChannelOutcome::SpoofDelivered { frame: off },
                ) => prop_assert_eq!(frame, off),
                (
                    OutcomeView::Collision { honest, adversary },
                    ChannelOutcome::Collision { honest: oh, adversary: oa },
                ) => {
                    prop_assert_eq!(adversary, *oa);
                    prop_assert_eq!(honest.len(), oh.len());
                    prop_assert_eq!(&honest.nodes().collect::<Vec<_>>(), oh);
                    // Collision participants' frames match their actions.
                    for (node, frame) in honest.frames() {
                        match &actions[node.index()] {
                            Action::Transmit { frame: f, .. } => prop_assert_eq!(frame, f),
                            other => prop_assert!(false, "non-transmit participant {other:?}"),
                        }
                    }
                }
                (view_outcome, owned_outcome) => prop_assert!(
                    false,
                    "view {view_outcome:?} disagrees with owned {owned_outcome:?}"
                ),
            }
        }
    }

    /// Statistics are conserved: every honest transmission is either
    /// delivered or collided, never both, never lost.
    #[test]
    fn stats_conservation(
        gen in arb_actions(4, 12),
        adv in arb_adversary(4, 2),
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let adversary = to_adversary(&adv);
        net.resolve_round(&actions, &adversary).unwrap();
        let stats = net.stats();
        let tx_count = gen.iter().filter(|g| matches!(g, GenAction::Transmit(..))).count() as u64;
        prop_assert_eq!(stats.honest_transmissions, tx_count);
        prop_assert_eq!(stats.honest_deliveries + stats.collisions, tx_count);
        // Every listen is accounted as a frame or silence.
        let listen_count = gen.iter().filter(|g| matches!(g, GenAction::Listen(_))).count() as u64;
        prop_assert_eq!(stats.frames_received + stats.silent_receptions, listen_count);
    }

    /// The trace records exactly what happened.
    #[test]
    fn trace_faithful(
        gen in arb_actions(3, 8),
        adv in arb_adversary(3, 1),
    ) {
        let cfg = NetworkConfig::new(3, 1).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let adversary = to_adversary(&adv);
        let resolution = net.resolve_round(&actions, &adversary).unwrap().to_resolution();
        let rec = net.trace().last().unwrap();
        let tx_count = gen.iter().filter(|g| matches!(g, GenAction::Transmit(..))).count();
        prop_assert_eq!(rec.transmissions().count(), tx_count);
        prop_assert_eq!(rec.adversary().count(), adv.len());
        for ch in 0..3 {
            prop_assert_eq!(
                rec.delivered_on(ChannelId(ch)).copied(),
                resolution.heard_on(ChannelId(ch))
            );
        }
    }

    /// Outcome classification is exhaustive and consistent with `heard`.
    #[test]
    fn outcome_classification(
        gen in arb_actions(3, 10),
        adv in arb_adversary(3, 2),
    ) {
        let cfg = NetworkConfig::new(3, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let adversary = to_adversary(&adv);
        let resolution = net.resolve_round(&actions, &adversary).unwrap().to_resolution();
        for outcome in &resolution.outcomes {
            match outcome {
                ChannelOutcome::Delivered { .. } | ChannelOutcome::SpoofDelivered { .. } => {
                    prop_assert!(outcome.heard().is_some());
                }
                ChannelOutcome::Idle
                | ChannelOutcome::NoiseOnly
                | ChannelOutcome::Collision { .. } => {
                    prop_assert!(outcome.heard().is_none());
                }
            }
        }
    }
}
