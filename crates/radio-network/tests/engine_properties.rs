//! Property tests for the channel-resolution semantics of Section 3.

use proptest::prelude::*;

use radio_network::{
    Action, AdversaryAction, ChannelId, ChannelOutcome, Emission, Network, NetworkConfig,
};

#[derive(Clone, Debug)]
enum GenAction {
    Transmit(usize, u32),
    Listen(usize),
    Sleep,
}

fn arb_actions(c: usize, n: usize) -> impl Strategy<Value = Vec<GenAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0..c, any::<u32>()).prop_map(|(ch, f)| GenAction::Transmit(ch, f)),
            (0..c).prop_map(GenAction::Listen),
            Just(GenAction::Sleep),
        ],
        n,
    )
}

fn arb_adversary(c: usize, t: usize) -> impl Strategy<Value = Vec<(usize, Option<u32>)>> {
    proptest::collection::btree_map(0..c, proptest::option::of(any::<u32>()), 0..=t)
        .prop_map(|m| m.into_iter().collect())
}

fn to_actions(gen: &[GenAction]) -> Vec<Action<u32>> {
    gen.iter()
        .map(|g| match g {
            GenAction::Transmit(ch, f) => Action::Transmit {
                channel: ChannelId(*ch),
                frame: *f,
            },
            GenAction::Listen(ch) => Action::Listen {
                channel: ChannelId(*ch),
            },
            GenAction::Sleep => Action::Sleep,
        })
        .collect()
}

fn to_adversary(gen: &[(usize, Option<u32>)]) -> AdversaryAction<u32> {
    let mut action = AdversaryAction::idle();
    for &(ch, spoof) in gen {
        action.push(
            ChannelId(ch),
            match spoof {
                Some(f) => Emission::Spoof(f),
                None => Emission::Noise,
            },
        );
    }
    action
}

proptest! {
    /// The fundamental law: a channel delivers iff it has exactly one
    /// transmitter, and the delivered frame is that transmitter's.
    #[test]
    fn resolution_matches_transmitter_count(
        gen in arb_actions(4, 12),
        adv in arb_adversary(4, 2),
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let resolution = net.resolve_round(&actions, to_adversary(&adv)).unwrap();

        for ch in 0..4 {
            let honest: Vec<u32> = gen.iter().filter_map(|g| match g {
                GenAction::Transmit(c, f) if *c == ch => Some(*f),
                _ => None,
            }).collect();
            let adv_here = adv.iter().find(|(c, _)| *c == ch);
            let total = honest.len() + usize::from(adv_here.is_some());
            let heard = resolution.heard_on(ChannelId(ch));
            match total {
                1 => {
                    if honest.len() == 1 {
                        prop_assert_eq!(heard, Some(honest[0]));
                    } else {
                        // adversary alone: spoof delivers, noise doesn't
                        match adv_here.unwrap().1 {
                            Some(f) => prop_assert_eq!(heard, Some(f)),
                            None => prop_assert_eq!(heard, None),
                        }
                    }
                }
                _ => prop_assert_eq!(heard, None),
            }
        }
    }

    /// Statistics are conserved: every honest transmission is either
    /// delivered or collided, never both, never lost.
    #[test]
    fn stats_conservation(
        gen in arb_actions(4, 12),
        adv in arb_adversary(4, 2),
    ) {
        let cfg = NetworkConfig::new(4, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        net.resolve_round(&actions, to_adversary(&adv)).unwrap();
        let stats = net.stats();
        let tx_count = gen.iter().filter(|g| matches!(g, GenAction::Transmit(..))).count() as u64;
        prop_assert_eq!(stats.honest_transmissions, tx_count);
        prop_assert_eq!(stats.honest_deliveries + stats.collisions, tx_count);
        // Every listen is accounted as a frame or silence.
        let listen_count = gen.iter().filter(|g| matches!(g, GenAction::Listen(_))).count() as u64;
        prop_assert_eq!(stats.frames_received + stats.silent_receptions, listen_count);
    }

    /// The trace records exactly what happened.
    #[test]
    fn trace_faithful(
        gen in arb_actions(3, 8),
        adv in arb_adversary(3, 1),
    ) {
        let cfg = NetworkConfig::new(3, 1).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let actions = to_actions(&gen);
        let resolution = net.resolve_round(&actions, to_adversary(&adv)).unwrap();
        let rec = net.trace().last().unwrap();
        let tx_count = gen.iter().filter(|g| matches!(g, GenAction::Transmit(..))).count();
        prop_assert_eq!(rec.transmissions.len(), tx_count);
        prop_assert_eq!(rec.adversary.len(), adv.len());
        for ch in 0..3 {
            prop_assert_eq!(
                rec.delivered[ch],
                resolution.heard_on(ChannelId(ch))
            );
        }
    }

    /// Outcome classification is exhaustive and consistent with `heard`.
    #[test]
    fn outcome_classification(
        gen in arb_actions(3, 10),
        adv in arb_adversary(3, 2),
    ) {
        let cfg = NetworkConfig::new(3, 2).unwrap();
        let mut net: Network<u32> = Network::new(cfg);
        let resolution = net.resolve_round(&to_actions(&gen), to_adversary(&adv)).unwrap();
        for outcome in &resolution.outcomes {
            match outcome {
                ChannelOutcome::Delivered { .. } | ChannelOutcome::SpoofDelivered { .. } => {
                    prop_assert!(outcome.heard().is_some());
                }
                ChannelOutcome::Idle
                | ChannelOutcome::NoiseOnly
                | ChannelOutcome::Collision { .. } => {
                    prop_assert!(outcome.heard().is_none());
                }
            }
        }
    }
}
