//! Counting-allocator proof of the arena round core's headline claim:
//! after warm-up, **a steady-state round performs zero heap
//! allocations** —
//!
//! * with trace retention off (`Network::new` under
//!   `TraceRetention::None`),
//! * with an explicit [`NullSink`],
//! * with a *bounded in-memory window* (`LastRounds(k)`), where the
//!   record arena plus [`Trace::push_ref`]'s recycling keep even the
//!   retention-on loop allocation-free for inline frames,
//! * through the full [`Simulation`] driver (reused action buffer,
//!   borrowed receptions),
//! * and on the sparse path at large `n` (100 000 nodes, 8 awake): the
//!   wake-queue driver plus the active-channel worklist keep the
//!   steady-state round allocation-free even when the population dwarfs
//!   the activity.
//!
//! The file holds exactly one `#[test]` so no sibling test can allocate
//! on another thread inside a measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radio_network::adversaries::NoAdversary;
use radio_network::{
    Action, AdversaryAction, ChannelId, ChannelModelSpec, Network, NetworkConfig, NullSink,
    Protocol, Reception, Simulation, TraceRetention,
};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocator event, then delegates to the system allocator.
struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counters are lock-free
// atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn snapshot() -> (u64, u64, u64) {
    (
        ALLOCS.load(Ordering::SeqCst),
        REALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

/// Assert the workload performs zero allocator events of any kind (no
/// alloc, no realloc, and no dealloc — steady state must not churn).
///
/// The counters are process-global, and the libtest harness owns
/// background threads that may lazily allocate once (panic-hook setup,
/// slow-test timers); a window polluted that way is retried, because a
/// *real* regression — the round loop touching the allocator — dirties
/// every window, so it can never pass the retry.
fn assert_zero_alloc(label: &str, mut f: impl FnMut()) {
    let mut last = (0, 0, 0);
    for _attempt in 0..3 {
        let before = snapshot();
        f();
        let after = snapshot();
        last = (after.0 - before.0, after.1 - before.1, after.2 - before.2);
        if last == (0, 0, 0) {
            return;
        }
    }
    panic!(
        "{label}: steady-state rounds hit the allocator in every window \
         (allocs={}, reallocs={}, deallocs={})",
        last.0, last.1, last.2
    );
}

const CHANNELS: usize = 8;
const NODES: usize = 64;
/// Enough rounds to cycle the whole action schedule several times, so
/// every per-channel load shape the schedule produces has warmed the
/// arena (and, for `LastRounds`, filled + recycled the window).
const WARMUP: usize = 256;
const MEASURED: usize = 512;

/// One deterministic round schedule: transmitters (some colliding),
/// listeners, sleepers — the same mix `benches/engine_hot_path.rs` times.
fn schedule() -> Vec<Vec<Action<u64>>> {
    (0..64)
        .map(|round| {
            (0..NODES)
                .map(|i| match i % 4 {
                    0 => Action::Transmit {
                        channel: ChannelId((i + round) % CHANNELS),
                        frame: (round * 1000 + i) as u64,
                    },
                    1 | 2 => Action::Listen {
                        channel: ChannelId((i + 2 * round) % CHANNELS),
                    },
                    _ => Action::Sleep,
                })
                .collect()
        })
        .collect()
}

/// Like [`schedule`], but with exactly one transmitter per channel (the
/// [`LeanNode`] pattern), so channels actually deliver — the shape the
/// lossy model needs: only deliverable frames can be dropped.
fn lone_tx_schedule() -> Vec<Vec<Action<u64>>> {
    (0..64)
        .map(|round| {
            (0..NODES)
                .map(|i| match i % 8 {
                    0 => Action::Transmit {
                        channel: ChannelId((i / 8 + round) % CHANNELS),
                        frame: (round * 1000 + i) as u64,
                    },
                    1..=3 => Action::Listen {
                        channel: ChannelId((i + 2 * round) % CHANNELS),
                    },
                    _ => Action::Sleep,
                })
                .collect()
        })
        .collect()
}

/// Drive `net` through `rounds` rounds of the schedule with a reused
/// jamming adversary action, consuming each view without materializing.
fn drive(
    net: &mut Network<u64>,
    schedule: &[Vec<Action<u64>>],
    adversaries: &[AdversaryAction<u64>],
    rounds: usize,
) -> usize {
    let mut delivered = 0;
    for r in 0..rounds {
        let acts = &schedule[r % schedule.len()];
        let adv = &adversaries[r % adversaries.len()];
        let view = net.resolve_round(acts, adv).expect("round resolves");
        for ch in 0..view.channels() {
            if view.heard_on(ChannelId(ch)).is_some() {
                delivered += 1;
            }
        }
    }
    delivered
}

/// A minimal protocol node for the full-stack check: deterministic
/// transmit/listen pattern, counts receptions instead of storing them.
#[derive(Debug)]
struct LeanNode {
    id: usize,
    round: u64,
    frames_heard: u64,
}

impl Protocol for LeanNode {
    type Msg = u64;

    fn begin_round(&mut self, round: u64) -> Action<u64> {
        self.round = round;
        // Exactly one transmitter per channel (ids 0, 8, …, 56 spread over
        // the 8 channels), so frames actually deliver; the rest rotate
        // between listening and sleeping.
        match self.id % 8 {
            0 => Action::Transmit {
                channel: ChannelId((self.id / 8 + round as usize) % CHANNELS),
                frame: self.id as u64,
            },
            1..=3 => Action::Listen {
                channel: ChannelId((self.id + 2 * round as usize) % CHANNELS),
            },
            _ => Action::Sleep,
        }
    }

    fn end_round(&mut self, _round: u64, reception: Option<Reception<&u64>>) {
        if let Some(Reception { frame: Some(_), .. }) = reception {
            self.frames_heard += 1;
        }
    }

    fn is_done(&self) -> bool {
        false // driven by an explicit step loop below
    }
}

/// A node for the large-`n` sparse check: the first [`SPARSE_ACTIVE`]
/// slots transmit or listen every round; everyone else sleeps forever and
/// advertises it, so the wake queue drains them after round 0.
#[derive(Debug)]
struct SparseNode {
    /// `< SPARSE_ACTIVE` for the active minority, `SPARSE_ACTIVE` for
    /// the sleepers.
    slot: usize,
}

const SPARSE_NODES: usize = 100_000;
const SPARSE_ACTIVE: usize = 8;

impl Protocol for SparseNode {
    type Msg = u64;

    fn begin_round(&mut self, round: u64) -> Action<u64> {
        let r = round as usize;
        match self.slot {
            s if s < SPARSE_ACTIVE / 2 => Action::Transmit {
                channel: ChannelId((s + r) % CHANNELS),
                frame: (round * 1000 + s as u64),
            },
            s if s < SPARSE_ACTIVE => Action::Listen {
                channel: ChannelId((s + 2 * r) % CHANNELS),
            },
            _ => Action::Sleep,
        }
    }

    fn end_round(&mut self, _round: u64, _reception: Option<Reception<&u64>>) {}

    fn is_done(&self) -> bool {
        false
    }

    fn next_wake(&self, round: u64) -> u64 {
        if self.slot < SPARSE_ACTIVE {
            round + 1
        } else {
            radio_network::NEVER
        }
    }
}

#[test]
fn steady_state_round_loop_allocates_nothing() {
    let schedule = schedule();
    // Adversary actions built once and *reused* (resolve_round borrows
    // them) — jamming included, so the zero covers collision accounting.
    let adversaries: Vec<AdversaryAction<u64>> = (0..schedule.len())
        .map(|r| AdversaryAction::jam([ChannelId(r % CHANNELS), ChannelId((r + 3) % CHANNELS)]))
        .collect();

    // 1. Retention off (Network::new installs a NullSink).
    let cfg_off = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::None);
    let mut net: Network<u64> = Network::new(cfg_off);
    drive(&mut net, &schedule, &adversaries, WARMUP);
    assert_zero_alloc("retention off", || {
        drive(&mut net, &schedule, &adversaries, MEASURED);
    });
    assert_eq!(net.stats().rounds as usize, WARMUP + MEASURED);

    // 2. Explicit NullSink.
    let cfg = NetworkConfig::new(CHANNELS, 2).unwrap();
    let mut net: Network<u64> = Network::with_sink(cfg, Box::new(NullSink::new()));
    drive(&mut net, &schedule, &adversaries, WARMUP);
    assert_zero_alloc("NullSink", || {
        drive(&mut net, &schedule, &adversaries, MEASURED);
    });

    // 3. Bounded in-memory retention: the record arena plus
    //    Trace::push_ref's window recycling keep even the retention-on
    //    loop off the allocator once the window has filled and every
    //    recycled record's vectors have seen the schedule's maxima.
    let cfg_last = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::LastRounds(64));
    let mut net: Network<u64> = Network::new(cfg_last);
    drive(&mut net, &schedule, &adversaries, WARMUP);
    assert_zero_alloc("LastRounds(64) recycled window", || {
        drive(&mut net, &schedule, &adversaries, MEASURED);
    });
    assert_eq!(net.trace().len(), 64);

    // 4. The full Simulation driver: reused action buffer, borrowed
    //    receptions, idle adversary (a jamming Adversary impl returns an
    //    owned action per round, which is the attacker's allocation, not
    //    the driver's).
    let cfg_sim = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::None);
    let nodes: Vec<LeanNode> = (0..NODES)
        .map(|id| LeanNode {
            id,
            round: 0,
            frames_heard: 0,
        })
        .collect();
    let mut sim = Simulation::new(cfg_sim, nodes, NoAdversary, 7).unwrap();
    for _ in 0..WARMUP {
        sim.step().unwrap();
    }
    assert_zero_alloc("Simulation::step", || {
        for _ in 0..MEASURED {
            sim.step().unwrap();
        }
    });
    let heard: u64 = sim.nodes().iter().map(|n| n.frames_heard).sum();
    assert!(heard > 0, "the lean protocol must actually communicate");

    // 5. The sparse path at large n: 100 000 nodes of which 8 are awake.
    //    Round 0 visits everyone (heap + action buffer reach their
    //    high-water marks) and drains the 99 992 never-waking sleepers
    //    from the queue; from then on each round touches only the awake
    //    minority and the channels they occupy, and must stay off the
    //    allocator — wake-queue requeues included.
    let cfg_sparse = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::None);
    let nodes: Vec<SparseNode> = (0..SPARSE_NODES)
        .map(|id| SparseNode {
            slot: if id < SPARSE_ACTIVE {
                id
            } else {
                SPARSE_ACTIVE
            },
        })
        .collect();
    let mut sim = Simulation::new(cfg_sparse, nodes, NoAdversary, 7).unwrap();
    for _ in 0..WARMUP {
        sim.step().unwrap();
    }
    assert_zero_alloc("sparse n=100_000, 8 awake", || {
        for _ in 0..MEASURED {
            sim.step().unwrap();
        }
    });
    assert_eq!(sim.stats().rounds, (WARMUP + MEASURED) as u64);
    assert!(
        sim.stats().honest_deliveries > 0,
        "the awake minority must actually communicate"
    );

    // 6. A diverging channel model (Lossy at 25% drop): per-listener
    //    outcomes are pure derive() draws with no sequential state, and
    //    the record arena's reception vectors recycle like every other
    //    column, so the model layer adds nothing to the steady-state
    //    allocation count — with retention off and with a bounded window
    //    (where divergent receptions are actually recorded).
    let lossy = ChannelModelSpec::Lossy {
        p_loss_ppm: 250_000,
    };
    let lone_schedule = lone_tx_schedule();
    let cfg_lossy = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::None)
        .with_channel_model(lossy);
    let mut net: Network<u64> = Network::new(cfg_lossy);
    net.seed_channel_model(99);
    drive(&mut net, &lone_schedule, &adversaries, WARMUP);
    assert_zero_alloc("lossy model, retention off", || {
        drive(&mut net, &lone_schedule, &adversaries, MEASURED);
    });
    assert!(
        net.stats().silent_receptions > 0,
        "25% loss must actually drop frames"
    );

    // The recorded-window variant drops *every* deliverable frame: a
    // fractional rate makes the per-round reception count stochastic, so
    // recycled buffers keep meeting new all-time maxima (and realloc)
    // indefinitely; full drop makes each round's reception column a pure
    // function of the schedule shape. The window holds 64 records plus
    // the arena's — 65 buffers rotating one slot per round over the
    // 64-round schedule — so 65 cycles of warm-up let every buffer meet
    // every shape's high-water mark.
    let cfg_lossy_window = NetworkConfig::new(CHANNELS, 2)
        .unwrap()
        .with_retention(TraceRetention::LastRounds(64))
        .with_channel_model(ChannelModelSpec::Lossy {
            p_loss_ppm: 1_000_000,
        });
    let mut net: Network<u64> = Network::new(cfg_lossy_window);
    net.seed_channel_model(99);
    drive(&mut net, &lone_schedule, &adversaries, 65 * 64);
    assert_zero_alloc("lossy model, LastRounds(64) recycled window", || {
        drive(&mut net, &lone_schedule, &adversaries, MEASURED);
    });
    assert!(
        net.trace().records().any(|r| !r.reception_nodes.is_empty()),
        "the retained window must contain divergent receptions"
    );
}
