//! Run f-AME through the whole adversary roster and watch the
//! t-disruptability bound hold every time (Theorem 6), including against
//! attackers that recompute the protocol's own schedule.
//!
//! ```text
//! cargo run --example adversary_gauntlet
//! ```

use secure_radio::fame::adversaries::{FeedbackPolicy, OmniscientJammer, TransmissionPolicy};
use secure_radio::fame::{run_fame, AmeInstance, FameFrame, Params};
use secure_radio::net::adversaries::{
    BusyChannelJammer, HybridAdversary, NoAdversary, RandomJammer, Spoofer, SweepJammer,
};
use secure_radio::net::Adversary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::minimal(40, 2)?;
    let pairs: Vec<(usize, usize)> = (0..12).map(|i| (i, i + 14)).collect();
    let instance = AmeInstance::new(params.n(), pairs.iter().copied())?;

    let forged = FameFrame::Vector {
        owner: 0,
        messages: [(14usize, b"forged payload".to_vec())].into_iter().collect(),
    };
    let forged2 = forged.clone();
    let roster: Vec<(&str, Box<dyn Adversary<FameFrame>>)> = vec![
        ("silence", Box::new(NoAdversary)),
        ("random jammer", Box::new(RandomJammer::new(1))),
        ("sweep jammer", Box::new(SweepJammer::new())),
        ("busy-channel jammer", Box::new(BusyChannelJammer::new(2, 8))),
        ("spoofer", Box::new(Spoofer::new(3, move |_, _| forged.clone()))),
        (
            "hybrid jam+spoof",
            Box::new(HybridAdversary::new(4, 0.5, move |_, _| forged2.clone())),
        ),
        (
            "omniscient (edges)",
            Box::new(OmniscientJammer::new(
                &params,
                instance.pairs(),
                TransmissionPolicy::PreferEdges,
                FeedbackPolicy::Quiet,
                5,
            )),
        ),
        (
            "omniscient (victims)",
            Box::new(
                OmniscientJammer::new(
                    &params,
                    instance.pairs(),
                    TransmissionPolicy::Victims(vec![0, 1, 14, 15]),
                    FeedbackPolicy::Random,
                    6,
                )
                .with_spoofing(),
            ),
        ),
    ];

    println!(
        "{:<22} {:>8} {:>7} {:>6} {:>6} {:>8}",
        "adversary", "rounds", "moves", "ok", "fail", "cover<=t"
    );
    for (name, adversary) in roster {
        let run = run_fame(&instance, &params, adversary, 99)?;
        let cover = run.outcome.disruption_cover();
        println!(
            "{:<22} {:>8} {:>7} {:>6} {:>6} {:>8}",
            name,
            run.outcome.rounds,
            run.moves,
            run.outcome.delivered_count(),
            run.outcome.disruption_edges().len(),
            format!("{} <= {}", cover, params.t()),
        );
        assert!(run.outcome.is_d_disruptable(params.t()));
        assert!(run.outcome.authentication_violations(&instance).is_empty());
        assert!(run.outcome.awareness_violations().is_empty());
    }
    println!("\nall adversaries held to the Theorem 6 bound; zero forged frames accepted");
    Ok(())
}
