//! Run f-AME through the whole adversary roster and watch the
//! t-disruptability bound hold every time (Theorem 6), including against
//! attackers that recompute the protocol's own schedule.
//!
//! The sweep is driven by the experiment harness: every attacker is a
//! [`ScenarioSpec`] whose trials fan out across threads with
//! deterministic per-trial seeds, so the whole gauntlet is reproducible
//! from one base seed.
//!
//! ```text
//! cargo run --example adversary_gauntlet
//! ```

use secure_radio_bench::{AdversaryChoice, ExperimentRunner, ScenarioSpec, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 4;
    let runner = ExperimentRunner::new();
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10} {:>8}",
        "adversary", "rounds p50", "rounds max", "moves p50", "max cover", "ok"
    );
    for adversary in AdversaryChoice::roster() {
        let spec = ScenarioSpec::new("gauntlet", 40, 2, 3)
            .with_workload(Workload::Disjoint { pairs: 12 })
            .with_adversary(adversary)
            .with_trials(trials)
            .with_seed(99);
        let result = runner.run_fame_scenario(&spec)?;
        let agg = &result.aggregate;
        println!(
            "{:<22} {:>10} {:>10} {:>9} {:>10} {:>8}",
            spec.adversary.label(),
            agg.rounds.median,
            agg.rounds.max,
            agg.moves.median,
            format!("{} <= {}", agg.cover_max, spec.t),
            format!("{}/{}", agg.ok_count, trials),
        );
        // Theorem 6 + Definition 1 must hold in every single trial.
        assert_eq!(agg.ok_count, trials);
        assert_eq!(agg.violations, 0);
    }
    println!(
        "\nall adversaries held to the Theorem 6 bound across {trials} trials each; \
         zero forged frames accepted"
    );
    Ok(())
}
