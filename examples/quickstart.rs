//! Quickstart: run f-AME once and inspect the guarantees.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Sets up a 40-node, 3-channel network where the adversary can disrupt
//! `t = 2` channels per round, asks 8 pairs to exchange messages, and
//! checks the three AME properties of Definition 1.

use secure_radio::fame::{run_fame, AmeInstance, Params};
use secure_radio::net::adversaries::RandomJammer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // n = 40 nodes, t = 2 disrupted channels/round, C = t + 1 = 3 channels.
    let params = Params::minimal(40, 2)?;

    // The exchange set E: ordered pairs that want to swap messages.
    let pairs = [
        (0, 20),
        (1, 21),
        (2, 22),
        (3, 23),
        (4, 24),
        (5, 25),
        (6, 26),
        (7, 27),
    ];
    let mut instance = AmeInstance::new(params.n(), pairs)?;
    instance = instance.with_message(0, 20, b"hello over hostile spectrum".to_vec())?;

    // A jamming adversary that disrupts two random channels every round.
    let run = run_fame(&instance, &params, RandomJammer::new(7), 42)?;

    println!(
        "f-AME finished in {} rounds / {} game moves",
        run.outcome.rounds, run.moves
    );
    println!(
        "delivered: {}/{}",
        run.outcome.delivered_count(),
        pairs.len()
    );
    for ((v, w), result) in &run.outcome.results {
        match result {
            secure_radio::fame::PairResult::Delivered(m) => {
                println!(
                    "  {v:>2} -> {w:<2}  delivered: {:?}",
                    String::from_utf8_lossy(m)
                );
            }
            secure_radio::fame::PairResult::Failed => {
                println!("  {v:>2} -> {w:<2}  FAILED (inside the t-cover)");
            }
        }
    }

    // Definition 1's three properties:
    // (1) Authentication: nothing forged was accepted.
    assert!(run.outcome.authentication_violations(&instance).is_empty());
    // (2) Sender awareness: every sender knows exactly what landed.
    assert!(run.outcome.awareness_violations().is_empty());
    // (3) t-disruptability: the failed pairs are covered by <= t nodes.
    assert!(run.outcome.is_d_disruptable(params.t()));
    println!(
        "disruption cover: {} (bound t = {})",
        run.outcome.disruption_cover(),
        params.t()
    );
    Ok(())
}
