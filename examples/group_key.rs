//! Establish a shared secret group key with no pre-shared secrets and no
//! trusted infrastructure, while an adversary jams `t` channels per round
//! (Section 6 of the paper).
//!
//! ```text
//! cargo run --example group_key
//! ```

use secure_radio::fame::group_key::establish_group_key;
use secure_radio::fame::Params;
use secure_radio::net::adversaries::RandomJammer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::minimal(40, 2)?;
    println!(
        "establishing a group key among n={} nodes, t={} jammed channels/round…",
        params.n(),
        params.t()
    );

    let report = establish_group_key(
        &params,
        RandomJammer::new(1), // attacks Part 1 (f-AME + Diffie-Hellman)
        RandomJammer::new(2), // attacks Part 2 (leader-key dissemination)
        RandomJammer::new(3), // attacks Part 3 (agreement)
        2024,
        false,
    )?;

    println!(
        "rounds: part1={} part2={} part3={} (total {})",
        report.rounds.part1,
        report.rounds.part2,
        report.rounds.part3,
        report.rounds.total()
    );
    println!("complete leaders: {:?}", report.complete_leaders);
    println!(
        "key holders: {}/{} (paper guarantees >= n - t = {})",
        report.holders(),
        params.n(),
        params.n() - params.t()
    );
    assert!(report.agreement(), "all holders must share one key");
    let key = report.group_key().expect("some node holds the key");
    println!(
        "agreed group key fingerprint: {}",
        key.fingerprint().short_hex()
    );

    for (node, adopted) in report.adopted.iter().enumerate().take(8) {
        match adopted {
            Some((leader, _)) => println!("  node {node:>2}: adopted leader {leader}'s key"),
            None => println!("  node {node:>2}: knows it has no key"),
        }
    }
    println!("  …");
    Ok(())
}
