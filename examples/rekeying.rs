//! Dynamic re-keying after a key compromise — the paper's introduction
//! motivates establishing keys *in-band* precisely so that a group can
//! "re-key dynamically, for example, after the detection of a compromised
//! device".
//!
//! ```text
//! cargo run --example rekeying
//! ```
//!
//! This example shows the full life cycle:
//! 1. the group establishes key `K1` over the air (Section 6);
//! 2. the long-lived channel hums along under an ordinary jammer;
//! 3. `K1` leaks — the adversary now predicts every hop and jams the
//!    exact channel each round: delivery collapses;
//! 4. the group re-runs the establishment protocol (new coins), derives
//!    `K2`, and service resumes at full delivery.

use secure_radio::crypto::key::SymmetricKey;
use secure_radio::crypto::prf::ChannelHopper;
use secure_radio::fame::group_key::establish_group_key;
use secure_radio::fame::longlived::{run_longlived, ScriptEntry};
use secure_radio::fame::Params;
use secure_radio::net::adversaries::RandomJammer;
use secure_radio::net::{Adversary, AdversaryAction, AdversaryView, ChannelId};

/// The nightmare attacker: it *knows the group key*, so it computes the
/// hopping sequence and parks on exactly the right channel every round.
struct KeyCompromiseJammer {
    hopper: ChannelHopper,
}

impl KeyCompromiseJammer {
    fn new(key: SymmetricKey, channels: usize) -> Self {
        KeyCompromiseJammer {
            hopper: ChannelHopper::new(&key, channels),
        }
    }
}

impl<M> Adversary<M> for KeyCompromiseJammer {
    fn act(&mut self, round: u64, _view: &AdversaryView<'_, M>) -> AdversaryAction<M> {
        AdversaryAction::jam([ChannelId(self.hopper.channel_for(round))])
    }

    fn name(&self) -> &'static str {
        "key-compromise"
    }
}

fn establish(params: &Params, seed: u64) -> Vec<Option<SymmetricKey>> {
    let report = establish_group_key(
        params,
        RandomJammer::new(seed),
        RandomJammer::new(seed + 1),
        RandomJammer::new(seed + 2),
        seed,
        false,
    )
    .expect("group key establishment");
    assert!(report.agreement());
    println!(
        "  established key {} in {} rounds ({}/{} holders)",
        report.group_key().expect("key").fingerprint().short_hex(),
        report.rounds.total(),
        report.holders(),
        params.n()
    );
    report.adopted.iter().map(|a| a.map(|(_, k)| k)).collect()
}

fn chat(
    label: &str,
    params: &Params,
    keys: &[Option<SymmetricKey>],
    adversary: impl Adversary<secure_radio::crypto::SealedBox>,
    seed: u64,
) -> f64 {
    // Only key holders may broadcast (the <= t unkeyed nodes know they
    // are outside the service).
    let holders_idx: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter_map(|(i, k)| k.is_some().then_some(i))
        .collect();
    let script: Vec<ScriptEntry> = (0..6)
        .map(|e| ScriptEntry {
            eround: e,
            sender: holders_idx[(5 + 7 * e as usize) % holders_idx.len()],
            message: format!("status update {e}").into_bytes(),
        })
        .collect();
    let report =
        run_longlived(params, keys, &script, adversary, seed, false).expect("session runs");
    let holders: Vec<bool> = keys.iter().map(Option::is_some).collect();
    let rate = report.delivery_rate(&script, &holders);
    println!("  {label}: delivery {:.1}%", rate * 100.0);
    rate
}

fn main() {
    let params = Params::minimal(40, 2).expect("params");

    println!("phase 1: establish K1 over hostile spectrum");
    let keys1 = establish(&params, 1001);
    let k1 = keys1.iter().flatten().next().copied().expect("holder");

    println!("phase 2: normal operation (ordinary jammer)");
    let healthy = chat(
        "session under random jammer",
        &params,
        &keys1,
        RandomJammer::new(7),
        11,
    );
    assert!(healthy > 0.99);

    println!("phase 3: K1 leaks — the adversary hops WITH the group");
    let compromised = chat(
        "session under key-compromise jammer",
        &params,
        &keys1,
        KeyCompromiseJammer::new(k1, params.c()),
        13,
    );
    assert!(
        compromised < 0.01,
        "a key-holding jammer should kill the channel, got {compromised}"
    );

    println!("phase 4: re-key in-band (fresh coins), service restored");
    let keys2 = establish(&params, 2002);
    let k2 = keys2.iter().flatten().next().copied().expect("holder");
    assert_ne!(k1.fingerprint(), k2.fingerprint(), "new key must differ");
    // The attacker still holds the OLD key: useless against K2.
    let restored = chat(
        "session under stale-key jammer",
        &params,
        &keys2,
        KeyCompromiseJammer::new(k1, params.c()),
        17,
    );
    assert!(restored > 0.99);
    println!("\nre-keying restores the service without any out-of-band contact");
}
