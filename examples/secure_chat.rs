//! A secure group chat over hostile spectrum: group-key setup followed by
//! the long-lived secure channel of Section 7.
//!
//! ```text
//! cargo run --example secure_chat
//! ```
//!
//! After the one-time setup, any node can broadcast to the whole group in
//! `Θ(t·log n)` rounds per message, with secrecy and authenticity, while
//! the adversary keeps jamming.

use secure_radio::fame::group_key::establish_group_key;
use secure_radio::fame::longlived::{run_longlived, ScriptEntry};
use secure_radio::fame::Params;
use secure_radio::net::adversaries::{BusyChannelJammer, RandomJammer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::minimal(40, 2)?;

    // ---- one-time setup: establish the group key under jamming ----------
    println!("setup: establishing group key…");
    let report = establish_group_key(
        &params,
        RandomJammer::new(11),
        RandomJammer::new(12),
        RandomJammer::new(13),
        7,
        false,
    )?;
    assert!(report.agreement());
    println!(
        "  done in {} rounds; {}/{} nodes keyed",
        report.rounds.total(),
        report.holders(),
        params.n()
    );

    // ---- the chat session -------------------------------------------------
    let keys: Vec<_> = report.adopted.iter().map(|a| a.map(|(_, k)| k)).collect();
    let script = vec![
        ScriptEntry {
            eround: 0,
            sender: 5,
            message: b"anyone copy?".to_vec(),
        },
        ScriptEntry {
            eround: 1,
            sender: 23,
            message: b"loud and clear".to_vec(),
        },
        ScriptEntry {
            eround: 2,
            sender: 5,
            message: b"rendezvous at dawn".to_vec(),
        },
        ScriptEntry {
            eround: 3,
            sender: 31,
            message: b"ack. out.".to_vec(),
        },
    ];
    // The chat runs against a *history-aware* jammer; the keyed hopping
    // sequence makes its hindsight useless.
    let session = run_longlived(
        &params,
        &keys,
        &script,
        BusyChannelJammer::new(99, 16),
        3,
        false,
    )?;

    println!(
        "chat: {} messages in {} rounds ({} rounds per emulated slot)",
        script.len(),
        session.rounds,
        session.epoch_len
    );
    let holders: Vec<bool> = keys.iter().map(Option::is_some).collect();
    let rate = session.delivery_rate(&script, &holders);
    println!("delivery rate among keyed nodes: {:.1}%", rate * 100.0);

    // What one listener saw:
    let listener = 17;
    for (e, (sender, message)) in &session.received[listener] {
        println!(
            "  node {listener} @ slot {e}: <{sender}> {}",
            String::from_utf8_lossy(message)
        );
    }
    assert!(rate > 0.99, "w.h.p. delivery should be near-perfect");
    Ok(())
}
