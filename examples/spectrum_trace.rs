//! Visualize the spectrum during an f-AME run: an ASCII waterfall of who
//! occupied each channel per round, with the adversary's jams and spoof
//! attempts marked.
//!
//! ```text
//! cargo run --example spectrum_trace
//! ```
//!
//! Legend: `T` honest transmission delivered, `x` collision (jam or
//! honest-honest), `!` spoofed frame delivered, `.` idle, `~` noise.

use secure_radio::fame::adversaries::{FeedbackPolicy, OmniscientJammer, TransmissionPolicy};
use secure_radio::fame::protocol::{make_nodes, round_budget};
use secure_radio::fame::{AmeInstance, Params};
use secure_radio::net::{NetworkConfig, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::minimal(40, 2)?;
    let pairs = [(0, 20), (1, 21), (2, 22), (3, 23)];
    let instance = AmeInstance::new(params.n(), pairs)?;
    let adversary = OmniscientJammer::new(
        &params,
        instance.pairs(),
        TransmissionPolicy::PreferEdges,
        FeedbackPolicy::Random,
        5,
    )
    .with_spoofing();

    let nodes = make_nodes(&instance, &params, 7)?;
    let cfg = NetworkConfig::new(params.c(), params.t())?;
    let mut sim = Simulation::new(cfg, nodes, adversary, 7)?;

    // Step manually for the first rounds and draw the waterfall from the
    // trace. (`Network::resolve_round` is also usable directly — see the
    // `radio_network` docs.)
    let budget = round_budget(&params, instance.len());
    let draw_rounds = 60u64;
    println!(
        "spectrum waterfall (first {draw_rounds} rounds, C = {}):\n",
        params.c()
    );
    println!("round | ch0 ch1 ch2");
    println!("------+------------");
    let mut drawn = 0u64;
    while !sim.all_done() && drawn < budget {
        sim.step()?;
        if drawn < draw_rounds {
            let rec = sim.trace().last().expect("just stepped");
            let mut cells = Vec::new();
            for ch in 0..params.c() {
                let honest = rec
                    .transmissions()
                    .filter(|&(_, c, _)| c.index() == ch)
                    .count();
                let adv = rec.adversary().any(|(c, _)| c.index() == ch);
                let spoofed = rec.spoof_delivered(secure_radio::net::ChannelId(ch));
                let cell = match (honest, adv, spoofed) {
                    (_, _, true) => " ! ",
                    (1, false, _) => " T ",
                    (0, true, _) => " ~ ",
                    (0, false, _) => " . ",
                    _ => " x ",
                };
                cells.push(cell);
            }
            println!("{:>5} |{}", rec.round, cells.join(" "));
        }
        drawn += 1;
    }
    println!("\n(run continued to completion in {drawn} rounds)");
    let stats = sim.stats();
    println!(
        "stats: {} honest frames delivered, {} collisions, {} adversary emissions, {} spoofs delivered",
        stats.honest_deliveries, stats.collisions, stats.adversary_transmissions, stats.spoofs_delivered
    );
    println!(
        "note: spoofs can deliver on witness-free channels, but no f-AME \
         node ever *accepts* one — acceptance requires the deterministic \
         schedule to name the transmitter."
    );
    Ok(())
}
