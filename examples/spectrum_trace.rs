//! Visualize the spectrum during an f-AME run: an ASCII waterfall of who
//! occupied each channel per round, with the adversary's jams and spoof
//! attempts marked.
//!
//! ```text
//! cargo run --example spectrum_trace [output.jsonl]
//! ```
//!
//! Legend: `T` honest transmission delivered, `x` collision (jam or
//! honest-honest), `!` spoofed frame delivered, `.` idle, `~` noise.
//!
//! The run is streamed through the shared `record_line` encoder into a
//! JSONL trace file (default: under the system temp directory), so the
//! exact run shown here can be re-driven with the `replay` binary.

use std::path::PathBuf;

use secure_radio::net::ChannelId;
use secure_radio::spectrum::run_spectrum_demo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args().nth(1).map_or_else(
        || std::env::temp_dir().join("spectrum_trace.jsonl"),
        PathBuf::from,
    );

    let draw_rounds = 60u64;
    println!("spectrum waterfall (first {draw_rounds} rounds, C = 3):\n");
    println!("round | ch0 ch1 ch2");
    println!("------+------------");
    let (stats, rounds) = run_spectrum_demo(&trace_path, |rec| {
        if rec.round >= draw_rounds {
            return;
        }
        let mut cells = Vec::new();
        for ch in 0..rec.channels {
            let honest = rec
                .transmissions()
                .filter(|&(_, c, _)| c.index() == ch)
                .count();
            let adv = rec.adversary().any(|(c, _)| c.index() == ch);
            let spoofed = rec.spoof_delivered(ChannelId(ch));
            let cell = match (honest, adv, spoofed) {
                (_, _, true) => " ! ",
                (1, false, _) => " T ",
                (0, true, _) => " ~ ",
                (0, false, _) => " . ",
                _ => " x ",
            };
            cells.push(cell);
        }
        println!("{:>5} |{}", rec.round, cells.join(" "));
    })?;

    println!("\n(run continued to completion in {rounds} rounds)");
    println!(
        "stats: {} honest frames delivered, {} collisions, {} adversary emissions, {} spoofs delivered",
        stats.honest_deliveries, stats.collisions, stats.adversary_transmissions, stats.spoofs_delivered
    );
    println!(
        "note: spoofs can deliver on witness-free channels, but no f-AME \
         node ever *accepts* one — acceptance requires the deterministic \
         schedule to name the transmitter."
    );
    println!("\ntrace written to {}", trace_path.display());
    println!(
        "every line is canonical `record_line` output; tests/spectrum_replay.rs \
         re-drives this exact run from the file via the replay crate's \
         ScriptedAdversary and checks it byte-for-byte"
    );
    Ok(())
}
